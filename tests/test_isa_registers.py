"""Unit tests for the register-file definition."""

import pytest

from repro.isa.registers import (
    LINK_REG,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_ALIASES,
    ZERO_REG,
    fp_arch_index,
    is_fp_reg,
    is_int_reg,
    parse_reg,
    reg_name,
)


class TestParseReg:
    def test_numeric_int_registers(self):
        assert parse_reg("r0") == 0
        assert parse_reg("r31") == 31

    def test_numeric_fp_registers(self):
        assert parse_reg("f0") == NUM_INT_REGS
        assert parse_reg("f31") == NUM_INT_REGS + 31

    def test_aliases(self):
        assert parse_reg("zero") == ZERO_REG
        assert parse_reg("ra") == LINK_REG
        for alias, index in REG_ALIASES.items():
            assert parse_reg(alias) == index

    def test_case_insensitive(self):
        assert parse_reg("R7") == 7
        assert parse_reg("RA") == LINK_REG

    def test_whitespace_stripped(self):
        assert parse_reg("  t0 ") == REG_ALIASES["t0"]

    @pytest.mark.parametrize("bad", ["r32", "f32", "x5", "", "r", "7", "rr1"])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)


class TestRegName:
    def test_roundtrip_all_registers(self):
        for index in range(NUM_ARCH_REGS):
            assert parse_reg(reg_name(index)) == index

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestClassification:
    def test_int_fp_partition(self):
        ints = sum(is_int_reg(i) for i in range(NUM_ARCH_REGS))
        fps = sum(is_fp_reg(i) for i in range(NUM_ARCH_REGS))
        assert ints == NUM_INT_REGS
        assert fps == NUM_FP_REGS
        assert all(is_int_reg(i) != is_fp_reg(i)
                   for i in range(NUM_ARCH_REGS))

    def test_fp_arch_index_bounds(self):
        assert fp_arch_index(0) == NUM_INT_REGS
        with pytest.raises(ValueError):
            fp_arch_index(NUM_FP_REGS)
        with pytest.raises(ValueError):
            fp_arch_index(-1)
