"""Unit tests for the functional emulator: one behaviour per opcode group,
plus kernel-level end-to-end checks."""

import pytest

from repro.emulator.machine import Machine, execute, to_signed, to_unsigned
from repro.errors import EmulationError
from repro.isa.assembler import assemble
from repro.isa.program import STACK_BASE
from repro.isa.registers import GLOBAL_REG, STACK_REG
from repro.workloads.kernels import (
    bubble_sort,
    fibonacci,
    hash_kernel,
    linked_list_walk,
    matrix_multiply,
    state_machine,
    vector_sum,
)


def run_outputs(source, max_instructions=100_000):
    return execute(assemble(source), max_instructions).outputs


class TestConversions:
    def test_to_signed(self):
        assert to_signed(0) == 0
        assert to_signed(2**64 - 1) == -1
        assert to_signed(2**63) == -(2**63)
        assert to_signed(2**63 - 1) == 2**63 - 1

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == 2**64 - 1
        assert to_unsigned(2**64 + 5) == 5


class TestArithmetic:
    def test_add_sub_wraparound(self):
        out = run_outputs("""
            li t0, 0x7FFF
            slli t0, t0, 48      # large positive
            add t1, t0, t0       # wraps
            out t1
            sub t2, zero, t0
            out t2
            halt
        """)
        big = 0x7FFF << 48
        assert out == [to_signed((big + big) & (2**64 - 1)),
                       to_signed(-big & (2**64 - 1))]

    def test_mul_signed(self):
        out = run_outputs("""
            li t0, -7
            li t1, 6
            mul t2, t0, t1
            out t2
            halt
        """)
        assert out == [-42]

    def test_div_truncates_toward_zero(self):
        out = run_outputs("""
            li t0, -7
            li t1, 2
            div t2, t0, t1
            out t2
            rem t3, t0, t1
            out t3
            halt
        """)
        assert out == [-3, -1]

    def test_div_by_zero_is_trap_free(self):
        out = run_outputs("""
            li t0, 5
            div t1, t0, zero
            out t1
            rem t2, t0, zero
            out t2
            halt
        """)
        assert out == [-1, 5]  # RISC-V convention

    def test_logic_ops(self):
        out = run_outputs("""
            li t0, 0x0FF0
            li t1, 0x00FF
            and t2, t0, t1
            out t2
            or  t2, t0, t1
            out t2
            xor t2, t0, t1
            out t2
            halt
        """)
        assert out == [0x00F0, 0x0FFF, 0x0F0F]

    def test_shifts(self):
        out = run_outputs("""
            li t0, -8
            srl t1, t0, zero     # shift by 0
            sra t2, t0, zero
            slli t3, t0, 1
            out t3
            li t4, 2
            srl t5, t0, t4
            out t5
            sra t6, t0, t4
            out t6
            halt
        """)
        assert out == [-16, (2**64 - 8) >> 2, -2]

    def test_slt_sltu_disagree_on_negatives(self):
        out = run_outputs("""
            li t0, -1
            li t1, 1
            slt t2, t0, t1
            out t2
            sltu t3, t0, t1
            out t3
            slti t4, t0, 0
            out t4
            halt
        """)
        assert out == [1, 0, 1]

    def test_logical_immediates_zero_extend(self):
        out = run_outputs("""
            li t0, 0
            xori t0, t0, 0x7FFF
            out t0
            halt
        """)
        assert out == [0x7FFF]

    def test_lui_builds_high_bits(self):
        out = run_outputs("""
            lui t0, 0x12
            ori t0, t0, 0x3456
            out t0
            halt
        """)
        assert out == [0x123456]


class TestZeroRegister:
    def test_writes_to_zero_discarded(self):
        out = run_outputs("""
            li t0, 99
            add zero, t0, t0
            out zero
            halt
        """)
        assert out == [0]


class TestMemory:
    def test_load_store_roundtrip(self):
        out = run_outputs("""
            li t0, 1234
            st t0, 0(gp)
            ld t1, 0(gp)
            out t1
            halt
        """)
        assert out == [1234]

    def test_uninitialised_memory_reads_zero(self):
        out = run_outputs("""
            ld t0, 128(gp)
            out t0
            halt
        """)
        assert out == [0]

    def test_unaligned_access_raises(self):
        program = assemble("""
            addi t0, gp, 4
            ld t1, 0(t0)
            halt
        """)
        with pytest.raises(EmulationError, match="unaligned"):
            execute(program)

    def test_initial_conventions(self):
        program = assemble("nop\nhalt")
        machine = Machine(program)
        assert machine.regs[STACK_REG] == STACK_BASE
        assert machine.regs[GLOBAL_REG] == program.data_base


class TestControlFlow:
    def test_taken_and_not_taken_branches(self):
        out = run_outputs("""
            li t0, 1
            beq t0, zero, skip   # not taken
            out t0
            bne t0, zero, end    # taken
        skip:
            out zero
        end:
            halt
        """)
        assert out == [1]

    def test_blt_bge(self):
        out = run_outputs("""
            li t0, -3
            li t1, 2
            blt t0, t1, a
            out zero
        a:  bge t1, t0, b
            out zero
        b:  li t2, 7
            out t2
            halt
        """)
        assert out == [7]

    def test_call_return(self):
        out = run_outputs("""
        main:
            call double
            out a0
            halt
        double:
            li a0, 21
            add a0, a0, a0
            ret
        """)
        assert out == [42]

    def test_indirect_jump_table(self):
        out = run_outputs("""
            la t0, table
            ld t1, 8(t0)        # second entry
            jr t1
        a:  out zero
            halt
        b:  li t2, 5
            out t2
            halt
            .data
        table:
            .word a, b
        """)
        assert out == [5]

    def test_jalr_links(self):
        out = run_outputs("""
            la t0, callee
            jalr t0
            out a0
            halt
        callee:
            li a0, 9
            ret
        """)
        assert out == [9]


class TestRunControl:
    def test_truncation_without_halt(self):
        result = execute(assemble("loop: j loop"), max_instructions=50)
        assert not result.halted
        assert len(result) == 50

    def test_step_after_halt_raises(self):
        machine = Machine(assemble("halt"))
        machine.step()
        with pytest.raises(EmulationError):
            machine.step()

    def test_stream_records_taken_and_next_pc(self):
        program = assemble("""
            li t0, 1
            bne t0, zero, end
            nop
        end:
            halt
        """)
        stream = execute(program).stream
        branch = stream[1]
        assert branch.taken
        assert branch.next_pc == program.symbols["end"]
        assert stream[0].next_pc == stream[0].pc + 4

    def test_load_record_has_ea(self):
        program = assemble("ld t0, 8(gp)\nhalt")
        stream = execute(program).stream
        assert stream[0].ea == program.data_base + 8


class TestKernels:
    def test_vector_sum(self):
        assert execute(vector_sum(10)).outputs == [55]

    def test_fibonacci(self):
        assert execute(fibonacci(20)).outputs == [6765]

    def test_bubble_sort(self):
        values = [5, 1, 4, 2, 3]
        assert execute(bubble_sort(values)).outputs == sorted(values)

    def test_hash_deterministic(self):
        a = execute(hash_kernel(32, 4)).outputs
        b = execute(hash_kernel(32, 4)).outputs
        assert a == b and len(a) == 1

    def test_linked_list_walk(self):
        n, walks = 16, 3
        expected = sum(range(n))
        assert execute(linked_list_walk(n, walks)).outputs == \
            [expected] * walks

    def test_state_machine_runs_to_halt(self):
        result = execute(state_machine(64))
        assert result.halted
        assert len(result.outputs) == 1
        assert result.outputs[0] > 0

    def test_matrix_multiply_trace(self):
        size = 4
        a = [(i % 7) + 1 for i in range(size * size)]
        b = [(i % 5) + 1 for i in range(size * size)]
        trace = 0
        for i in range(size):
            trace += sum(a[i * size + k] * b[k * size + i]
                         for k in range(size))
        assert execute(matrix_multiply(size)).outputs == [trace]
