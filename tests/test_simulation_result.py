"""Unit tests for SimulationResult's derived metrics (pure math)."""

import pytest

from repro.core.simulation import SimulationResult


def make_result(**counters):
    return SimulationResult(benchmark="b", config_name="c",
                            cycles=counters.pop("cycles", 100),
                            committed=counters.pop("committed", 400),
                            counters=counters)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make_result(cycles=100, committed=400).ipc == 4.0
        assert make_result(cycles=0, committed=0).ipc == 0.0

    def test_fetch_rate_includes_reuse(self):
        result = make_result(**{"fetch.insts": 500,
                                "fetch.reused_insts": 100})
        assert result.fetch_rate == 6.0

    def test_rename_rate(self):
        assert make_result(**{"rename.insts": 250}).rename_rate == 2.5

    def test_slot_utilization(self):
        result = make_result(**{"fetch.insts": 300, "fetch.slots": 600})
        assert result.slot_utilization == 0.5
        assert make_result().slot_utilization == 0.0

    def test_trace_cache_hit_rate(self):
        result = make_result(**{"tc.hits": 30, "tc.misses": 10})
        assert result.trace_cache_hit_rate == 0.75
        assert make_result().trace_cache_hit_rate == 0.0

    def test_fragment_reuse_rate(self):
        result = make_result(**{"fragbuf.reuses": 25,
                                "fragbuf.allocations": 100})
        assert result.fragment_reuse_rate == 0.25

    def test_preconstructed_fraction(self):
        result = make_result(**{"rename.fragments_started": 50,
                                "rename.fragments_preconstructed": 40})
        assert result.preconstructed_fraction == 0.8

    def test_liveout_accuracy(self):
        result = make_result(**{"rename.liveout_lookups": 100,
                                "rename.liveout_mispredicts": 1,
                                "rename.liveout_cold": 4})
        assert result.liveout_accuracy == pytest.approx(0.95)
        assert make_result().liveout_accuracy == 1.0

    def test_renamed_before_source_fraction(self):
        result = make_result(**{"rename.insts": 200,
                                "rename.before_source": 10})
        assert result.renamed_before_source_fraction == 0.05

    def test_l1i_miss_rate(self):
        result = make_result(**{"l1i.hits": 90, "l1i.misses": 10})
        assert result.l1i_miss_rate == pytest.approx(0.1)

    def test_timeout_flag(self):
        assert not make_result().timed_out
        assert make_result(**{"sim.timeout": 1}).timed_out

    def test_counter_accessor_defaults(self):
        assert make_result().counter("anything") == 0.0


class TestZeroDenominators:
    """Every ratio property must be well-defined on an empty result."""

    def test_all_ratios_defined_with_no_counters(self):
        result = make_result(cycles=0, committed=0)
        assert result.ipc == 0.0
        assert result.fetch_rate == 0.0
        assert result.rename_rate == 0.0
        assert result.slot_utilization == 0.0
        assert result.trace_cache_hit_rate == 0.0
        assert result.fragment_reuse_rate == 0.0
        assert result.preconstructed_fraction == 0.0
        assert result.liveout_accuracy == 1.0  # no lookups -> perfect
        assert result.renamed_before_source_fraction == 0.0
        assert result.l1i_miss_rate == 0.0
        assert not result.timed_out

    def test_zero_cycles_with_nonzero_counters(self):
        result = make_result(cycles=0, committed=0,
                             **{"fetch.insts": 10, "rename.insts": 5})
        assert result.ipc == 0.0
        assert result.fetch_rate == 0.0
        assert result.rename_rate == 0.0
