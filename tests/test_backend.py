"""Tests for the out-of-order core: window reservations, wakeup/select,
functional-unit limits, placeholder binding, and load latencies."""

import pytest

from repro.backend.core import OutOfOrderCore
from repro.config import BackEndConfig, MemoryConfig
from repro.core.uop import MicroOp, PlaceholderProducer, UopState
from repro.emulator.stream import DynamicInstruction
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector


def make_core(**backend_kwargs):
    stats = StatsCollector()
    memory = MemoryHierarchy(MemoryConfig(), stats)
    return OutOfOrderCore(BackEndConfig(**backend_kwargs), memory, stats)


_SEQ = [0]


def make_uop(source_text="add t0, t1, t2", record=None, seq=None):
    inst = assemble(source_text).instructions[0]
    if seq is None:
        _SEQ[0] += 1
        seq = _SEQ[0]
    return MicroOp(seq, inst, inst.addr, fragment_seq=0, position=0,
                   record=record)


def run_until_done(core, uop, max_cycles=300):
    now = 0
    while uop.state is not UopState.DONE and now < max_cycles:
        now += 1
        core.cycle(now)
    return now


class TestReservations:
    def test_reserve_and_release(self):
        core = make_core(window_size=4)
        assert core.reserve(3, fragment_seq=1)
        assert not core.reserve(2, fragment_seq=2)
        assert core.reserve(1, fragment_seq=2)
        core.release(1, 2)
        assert core.window_free == 2

    def test_release_all(self):
        core = make_core(window_size=8)
        core.reserve(5, fragment_seq=1)
        core.release_all(1)
        assert core.window_free == 8

    def test_release_never_goes_negative(self):
        core = make_core(window_size=8)
        core.reserve(2, fragment_seq=1)
        core.release(1, 10)
        assert core.window_free == 8

    def test_set_reservation_shrinks_only(self):
        core = make_core(window_size=8)
        core.reserve(6, fragment_seq=1)
        core.set_reservation(1, 2)
        assert core.window_free == 6
        core.set_reservation(1, 4)  # growth request ignored
        assert core.window_free == 6


class TestExecution:
    def test_single_alu_op_completes(self):
        core = make_core()
        uop = make_uop()
        core.dispatch([uop], now=0)
        cycles = run_until_done(core, uop)
        # enters the window at dispatch latency 2, issues that cycle,
        # completes after the 1-cycle ALU latency
        assert cycles == 3

    def test_dependent_chain_executes_in_order(self):
        core = make_core()
        producer = make_uop("add t0, t1, t2")
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(producer)
        core.dispatch([producer, consumer], now=0)
        run_until_done(core, consumer)
        assert producer.complete_cycle < consumer.complete_cycle

    def test_independent_ops_complete_together(self):
        core = make_core()
        a = make_uop("add t0, t1, t2")
        b = make_uop("add t3, t4, t5")
        core.dispatch([a, b], now=0)
        run_until_done(core, b)
        assert a.complete_cycle == b.complete_cycle

    def test_multiply_latency_longer_than_alu(self):
        core = make_core()
        add = make_uop("add t0, t1, t2")
        mul = make_uop("mul t3, t4, t5")
        core.dispatch([add, mul], now=0)
        run_until_done(core, mul)
        assert mul.complete_cycle - add.complete_cycle == \
            BackEndConfig().fu_latencies["imul"] - 1

    def test_fu_structural_limit(self):
        # Only 4 int multipliers: 5 ready multiplies need two cycles.
        core = make_core()
        muls = [make_uop("mul t0, t1, t2") for _ in range(5)]
        core.dispatch(muls, now=0)
        run_until_done(core, muls[-1])
        completions = sorted(u.complete_cycle for u in muls)
        assert completions[3] < completions[4]

    def test_issue_width_limit(self):
        core = make_core(issue_width=2)
        uops = [make_uop() for _ in range(6)]
        core.dispatch(uops, now=0)
        run_until_done(core, uops[-1])
        by_cycle = {}
        for uop in uops:
            by_cycle.setdefault(uop.complete_cycle, 0)
            by_cycle[uop.complete_cycle] += 1
        assert max(by_cycle.values()) <= 2

    def test_oldest_first_select(self):
        core = make_core(issue_width=1)
        young = make_uop(seq=100)
        old = make_uop(seq=50)
        core.dispatch([young, old], now=0)
        run_until_done(core, young)
        assert old.complete_cycle < young.complete_cycle

    def test_squashed_uop_never_completes(self):
        core = make_core()
        uop = make_uop()
        core.dispatch([uop], now=0)
        uop.state = UopState.SQUASHED
        core.drop_squashed_dispatch()
        for now in range(1, 10):
            assert uop not in core.cycle(now)

    def test_load_miss_takes_memory_latency(self):
        core = make_core()
        inst = assemble("ld t0, 0(gp)").instructions[0]
        record = DynamicInstruction(0, inst, inst.addr, inst.addr + 4,
                                    ea=0x100000)
        load = make_uop("ld t0, 0(gp)", record=record)
        core.dispatch([load], now=0)
        cycles = run_until_done(core, load, max_cycles=300)
        assert cycles > 100  # cold miss to memory

    def test_load_hit_is_fast(self):
        core = make_core()
        core.memory.data_access(0x100000, 0)  # warm the D-cache
        inst = assemble("ld t0, 0(gp)").instructions[0]
        record = DynamicInstruction(0, inst, inst.addr, inst.addr + 4,
                                    ea=0x100000)
        load = make_uop("ld t0, 0(gp)", record=record)
        core.dispatch([load], now=1000)
        now = 1000
        while load.state is not UopState.DONE:
            now += 1
            core.cycle(now)
        assert now - 1000 <= 5

    def test_wrong_path_load_charged_hit_only(self):
        core = make_core()
        load = make_uop("ld t0, 0(gp)", record=None)
        core.dispatch([load], now=0)
        assert run_until_done(core, load) <= 5


class TestPlaceholders:
    def test_consumer_waits_for_unbound_placeholder(self):
        core = make_core()
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(placeholder)
        core.dispatch([consumer], now=0)
        for now in range(1, 20):
            core.cycle(now)
        assert consumer.state is UopState.WAITING

    def test_bind_before_producer_completion(self):
        core = make_core()
        producer = make_uop()
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(placeholder)
        core.dispatch([producer, consumer], now=0)
        core.cycle(1)
        placeholder.bind(producer)  # early bind: producer not done yet
        run_until_done(core, consumer)
        assert consumer.complete_cycle > producer.complete_cycle

    def test_late_bind_to_completed_producer_wakes_consumer(self):
        core = make_core()
        producer = make_uop()
        core.dispatch([producer], now=0)
        run_until_done(core, producer)
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(placeholder)
        core.dispatch([consumer], now=20)
        core.cycle(23)  # consumer in window, waiting
        assert consumer.state is UopState.WAITING
        core.bind_placeholder(placeholder, producer=producer)
        for now in range(24, 30):
            core.cycle(now)
        assert consumer.state is UopState.DONE

    def test_bind_ready_resolves_architectural_source(self):
        core = make_core()
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(placeholder)
        core.dispatch([consumer], now=0)
        core.cycle(3)
        core.bind_placeholder(placeholder, ready=True)
        for now in range(4, 10):
            core.cycle(now)
        assert consumer.state is UopState.DONE

    def test_placeholder_chain_resolution(self):
        core = make_core()
        producer = make_uop()
        inner = PlaceholderProducer(8, fragment_seq=0)
        outer = PlaceholderProducer(8, fragment_seq=1)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(outer)
        core.dispatch([producer, consumer], now=0)
        core.cycle(1)
        core.bind_placeholder(outer, producer=inner)
        core.bind_placeholder(inner, producer=producer)
        run_until_done(core, consumer)
        assert consumer.state is UopState.DONE

    def test_sources_ready_reflects_placeholder_state(self):
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(placeholder)
        assert not consumer.sources_ready()
        placeholder.ready = True
        assert consumer.sources_ready()
