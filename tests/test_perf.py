"""Tests for the performance layer (``repro.perf``).

Three concerns:

* **Golden parity** — the gated fast paths (``REPRO_FAST=1``: decode
  cache, fragment-walk cache) must be bit-identical to the reference
  loop (``REPRO_FAST=0``): same cycles, same committed count, same
  counter dict, entry for entry.
* **DecodeCache** — hit/miss/eviction unit behaviour.
* **Benchmark harness** — ``run_matrix``/``compare_records`` record
  shape and regression gating, plus a ``bench_perf.py --smoke`` run.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import perf
from repro.core.simulation import run_simulation
from repro.core.uop import DecodeCache
from repro.isa.assembler import assemble

BENCH_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_perf.py"


def _run(config, fast, monkeypatch, benchmark="gcc", instructions=3000):
    monkeypatch.setenv(perf.PERF_FAST_ENV, "1" if fast else "0")
    return run_simulation(config, benchmark, max_instructions=instructions)


class TestGoldenParity:
    """Fast paths must not change a single architectural counter."""

    @pytest.mark.parametrize("config", ["w16", "tc", "pr-2x8w"])
    def test_counters_bit_identical(self, config, monkeypatch):
        fast = _run(config, True, monkeypatch)
        reference = _run(config, False, monkeypatch)
        assert fast.cycles == reference.cycles
        assert fast.committed == reference.committed
        assert fast.counters == reference.counters

    def test_parity_on_second_benchmark(self, monkeypatch):
        fast = _run("pf-2x8w", True, monkeypatch, benchmark="mcf")
        reference = _run("pf-2x8w", False, monkeypatch, benchmark="mcf")
        assert fast.counters == reference.counters

    def test_fast_paths_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv(perf.PERF_FAST_ENV, raising=False)
        assert perf.fast_paths_enabled()
        for value in ("0", "false", "NO", " off ", ""):
            monkeypatch.setenv(perf.PERF_FAST_ENV, value)
            assert not perf.fast_paths_enabled()
        monkeypatch.setenv(perf.PERF_FAST_ENV, "1")
        assert perf.fast_paths_enabled()


class TestDecodeCache:
    def _inst(self, text="add t0, t1, t2"):
        return assemble(text).instructions[0]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            DecodeCache(capacity=0)

    def test_miss_then_hit_returns_same_decoded(self):
        cache = DecodeCache(capacity=8)
        inst = self._inst()
        first = cache.lookup(inst.addr, inst)
        second = cache.lookup(inst.addr, inst)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert first.srcs and first.dest is not None

    def test_identity_mismatch_is_a_miss(self):
        cache = DecodeCache(capacity=8)
        a, b = self._inst(), self._inst()
        assert a is not b and a.addr == b.addr
        cache.lookup(a.addr, a)
        decoded_b = cache.lookup(b.addr, b)
        assert cache.hits == 0 and cache.misses == 2
        # The replacement now serves hits for the new identity.
        assert cache.lookup(b.addr, b) is decoded_b
        assert cache.hits == 1

    def test_fifo_batch_eviction(self):
        cache = DecodeCache(capacity=16)
        insts = [self._inst() for _ in range(16)]
        for i, inst in enumerate(insts):
            cache.lookup(i * 4, inst)
        assert len(cache) == 16 and cache.evictions == 0
        cache.lookup(16 * 4, self._inst())
        # One overflow evicts capacity//8 oldest entries, then inserts.
        assert cache.evictions == 2
        assert len(cache) == 15
        # Oldest two victims miss again; younger entries still hit.
        hits_before = cache.hits
        cache.lookup(15 * 4, insts[15])
        assert cache.hits == hits_before + 1


class TestBenchHarness:
    def test_run_matrix_record_shape(self, monkeypatch):
        monkeypatch.setenv(perf.PERF_FAST_ENV, "1")
        record = perf.run_matrix(configs=("w16",), instructions=2000,
                                 repeats=1, phase_breakdown=False)
        assert record["schema"] == perf.SCHEMA_VERSION
        assert record["fast_paths"] is True
        assert record["calibration_score"] > 0
        (entry,) = record["entries"]
        assert entry["config"] == "w16"
        assert entry["sim_cycles"] > 0
        assert entry["sim_cycles_per_sec"] > 0
        assert entry["uops_per_sec"] > 0
        assert entry["phase_seconds"] is None
        assert 0.0 < entry["decode_cache_hit_rate"] <= 1.0

    def test_compare_records_gates_on_regression(self):
        def record(cps, calibration, instructions=1000):
            return {"calibration_score": calibration,
                    "entries": [{"config": "w16", "benchmark": "gcc",
                                 "instructions": instructions,
                                 "sim_cycles_per_sec": cps}]}

        baseline = record(1000.0, 1.0)
        assert perf.compare_records(record(900.0, 1.0), baseline) == []
        failures = perf.compare_records(record(500.0, 1.0), baseline)
        assert len(failures) == 1 and "w16/gcc" in failures[0]
        # Calibration normalisation: half the throughput on a machine
        # half as fast is not a regression.
        assert perf.compare_records(record(500.0, 0.5), baseline) == []
        # Mismatched instruction counts are not comparable.
        assert perf.compare_records(
            record(100.0, 1.0, instructions=50), baseline) == []

    def test_compare_records_gates_sampled_section(self):
        def record(cps):
            return {"calibration_score": 1.0, "entries": [],
                    "sampled": [{"config": "tc", "benchmark": "gcc",
                                 "instructions": 240_000,
                                 "sim_cycles_per_sec": cps}]}

        baseline = record(1000.0)
        assert perf.compare_records(record(900.0), baseline) == []
        failures = perf.compare_records(record(500.0), baseline)
        assert len(failures) == 1 and "sampled tc/gcc" in failures[0]

    def test_run_sampled_benchmark_entry_shape(self):
        entry = perf.run_sampled_benchmark("w16", instructions=8_000)
        assert entry["config"] == "w16"
        assert entry["est_sim_cycles"] > 0
        assert entry["sim_cycles_per_sec"] > 0
        assert entry["speedup"] > 0
        assert entry["wall_seconds"] < entry["full_wall_seconds"]
        assert 0.0 <= entry["ipc_rel_error"] < 1.0

    def test_bench_perf_smoke_cli(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        result = subprocess.run(
            [sys.executable, str(BENCH_SCRIPT), "--smoke", "--repeats", "1",
             "--no-phases", "-n", "1500", "--configs", "w16",
             "--output", str(out)],
            capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr
        record = json.loads(out.read_text())
        assert record["entries"][0]["config"] == "w16"
        assert record["entries"][0]["sim_cycles_per_sec"] > 0
