"""Tests for the synthetic workload generator and the benchmark suite."""

import pytest

from repro.config import FragmentConfig
from repro.emulator.machine import Machine
from repro.errors import ConfigError, ReproError
from repro.workloads.characteristics import WorkloadSpec
from repro.workloads.generator import ProgramGenerator, generate_program
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    SUITE_SPECS,
    characterize,
    default_sim_instructions,
    get_benchmark,
    get_spec,
    oracle_stream,
)

SMALL_SPEC = WorkloadSpec(name="tiny", seed=42, num_functions=8,
                          hot_functions=4)


class TestWorkloadSpec:
    def test_rejects_bad_hot_set(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", seed=1, num_functions=4, hot_functions=5)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", seed=1, num_functions=4, hot_functions=2,
                         diamond_prob=0.9, mem_prob=0.9)
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", seed=1, num_functions=4, hot_functions=2,
                         nop_prob=1.5)

    def test_rejects_non_pow2_switch(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", seed=1, num_functions=4, hot_functions=2,
                         switch_cases=6)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = ProgramGenerator(SMALL_SPEC).generate_source()
        b = ProgramGenerator(SMALL_SPEC).generate_source()
        assert a == b

    def test_different_seeds_differ(self):
        import dataclasses
        other = dataclasses.replace(SMALL_SPEC, seed=43)
        assert (ProgramGenerator(SMALL_SPEC).generate_source()
                != ProgramGenerator(other).generate_source())

    def test_generated_program_executes_cleanly(self):
        program = generate_program(SMALL_SPEC)
        result = Machine(program).run(20_000)
        # Outer dispatcher loops forever; truncation is expected, a crash
        # (EmulationError) is not.
        assert len(result) == 20_000
        assert not result.halted

    def test_program_has_expected_structure(self):
        program = generate_program(SMALL_SPEC)
        assert "main" in program.symbols
        assert "outer_loop" in program.symbols
        assert all(f"func_{i}" in program.symbols
                   for i in range(SMALL_SPEC.num_functions))

    def test_execution_is_deterministic(self):
        program = generate_program(SMALL_SPEC)
        a = Machine(program).run(5000).stream
        b = Machine(program).run(5000).stream
        assert [(r.pc, r.taken) for r in a] == [(r.pc, r.taken) for r in b]


class TestSuite:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12
        assert set(BENCHMARK_NAMES) == set(SUITE_SPECS)

    def test_get_spec_unknown(self):
        with pytest.raises(ReproError):
            get_spec("nonexistent")

    def test_programs_cached(self):
        assert get_benchmark("gzip") is get_benchmark("gzip")

    def test_oracle_stream_slicing(self):
        long = oracle_stream("gzip", 3000)
        short = oracle_stream("gzip", 1000)
        assert len(short.stream) == 1000
        assert short.stream[0] is long.stream[0]

    def test_default_sim_instructions_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "1234")
        assert default_sim_instructions() == 1234
        monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "-3")
        with pytest.raises(ReproError):
            default_sim_instructions()

    def test_characterize_gzip(self):
        c = characterize("gzip", 5000)
        assert c.dynamic_instructions == 5000
        assert 8.0 < c.avg_fragment_length <= 16.0
        assert 0.0 < c.cond_branch_fraction < 0.3
        assert c.text_bytes == c.static_instructions * 4

    def test_fragment_length_band_matches_table2(self):
        """The suite must span the paper's Table 2 band: mcf shortest,
        compression benchmarks longest."""
        lengths = {name: characterize(name, 10_000).avg_fragment_length
                   for name in ("mcf", "gzip", "bzip2", "gcc")}
        assert lengths["mcf"] == min(lengths.values())
        assert lengths["mcf"] < 12.0
        assert max(lengths.values()) < 14.5

    def test_footprint_split(self):
        """crafty/gcc/perl/vortex are the big-footprint four (Section 5.5
        relies on this split)."""
        big = {n: get_benchmark(n).text_size
               for n in ("crafty", "gcc", "perl", "vortex")}
        small = {n: get_benchmark(n).text_size
                 for n in ("gzip", "bzip2", "mcf")}
        assert min(big.values()) > max(small.values())
        assert max(big.values()) > 64 * 1024  # exceeds the L1 I-cache


class TestFragmentConfigInteraction:
    def test_characterize_respects_fragment_config(self):
        short = characterize("gzip", 5000,
                             FragmentConfig(max_length=8,
                                            cond_branch_limit=4))
        assert short.avg_fragment_length <= 8.0
