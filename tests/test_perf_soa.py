"""Golden-parity matrix for the tier-2 batched SoA cycle loop.

``REPRO_FAST=2`` (the structure-of-arrays batch step, see
``docs/DATA_LAYOUT.md``) must be bit-identical to the ``REPRO_FAST=0``
reference loop in every execution mode the simulator supports:

* **Full detail** — every paper configuration class (wide monolithic,
  trace cache, parallel fetch, parallel fetch + parallel rename).
* **Observability on** — the deterministic pillars (metrics sampling,
  event tracing) live during the run.
* **Interval sampled** — the SMARTS-style sampling engine driving
  warm/measure/fast-forward transitions over the tier-2 step.
* **Checkpointed** — a run killed mid-flight by the ``kill_mid_unit``
  fault and resumed at tier 2 in a fresh process must reproduce the
  tier-0 uninterrupted answer.

Parity here means the full identity: cycles, committed instructions and
the complete counter dict, entry for entry.  Knob parsing for the tier
switch rides along.
"""

import os
import subprocess
import sys

import pytest

from repro import perf, run_simulation
from repro.checkpoint import CHECKPOINT_DIR_ENV
from repro.faults import FAULTS_ENV
from repro.perf import PerfConfig, fast_level, soa_enabled
from repro.sampling import SamplingConfig

#: One configuration per front-end organization class of the paper.
CONFIGS = ("w16", "tc", "pf-2x8w", "pr-2x8w")
LENGTH = 3000


@pytest.fixture(autouse=True)
def hermetic_env(monkeypatch, tmp_path):
    """Isolate from ambient fast/fault/checkpoint/obs state."""
    for name in (FAULTS_ENV, "REPRO_OBS_SAMPLE", "REPRO_OBS_TRACE",
                 "REPRO_OBS_PROFILE", "REPRO_SAMPLE", "REPRO_CHECKPOINT"):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt"))


def identity(result):
    """Everything parity compares, bit for bit."""
    return (result.cycles, result.committed, dict(result.counters))


def run_tier(level, config, monkeypatch, benchmark="gcc",
             instructions=LENGTH, **kwargs):
    monkeypatch.setenv(perf.PERF_FAST_ENV, str(level))
    return run_simulation(config, benchmark,
                          max_instructions=instructions, **kwargs)


class TestTierKnob:
    def test_fast_level_parsing(self, monkeypatch):
        monkeypatch.delenv(perf.PERF_FAST_ENV, raising=False)
        assert fast_level() == 1
        for value, level in (("0", 0), ("off", 0), ("", 0), ("1", 1),
                             ("yes", 1), ("2", 2), ("soa", 2), (" SoA ", 2)):
            monkeypatch.setenv(perf.PERF_FAST_ENV, value)
            assert fast_level() == level, value

    def test_soa_enabled(self, monkeypatch):
        monkeypatch.setenv(perf.PERF_FAST_ENV, "2")
        assert soa_enabled()
        monkeypatch.setenv(perf.PERF_FAST_ENV, "1")
        assert not soa_enabled()

    def test_perf_config_levels(self):
        assert not PerfConfig(level=0).fast and not PerfConfig(level=0).soa
        assert PerfConfig(level=1).fast and not PerfConfig(level=1).soa
        assert PerfConfig(level=2).fast and PerfConfig(level=2).soa


class TestSoAGoldenParity:
    """Tier 2 must not change a single architectural counter."""

    @pytest.mark.parametrize("config", CONFIGS)
    def test_counters_bit_identical(self, config, monkeypatch):
        soa = run_tier(2, config, monkeypatch)
        reference = run_tier(0, config, monkeypatch)
        assert identity(soa) == identity(reference)

    def test_parity_on_second_benchmark(self, monkeypatch):
        soa = run_tier(2, "pr-2x8w", monkeypatch, benchmark="mcf")
        reference = run_tier(0, "pr-2x8w", monkeypatch, benchmark="mcf")
        assert identity(soa) == identity(reference)

    def test_parity_against_tier1(self, monkeypatch):
        """All three tiers agree, not just the endpoints."""
        soa = run_tier(2, "w16", monkeypatch)
        cached = run_tier(1, "w16", monkeypatch)
        assert identity(soa) == identity(cached)


class TestModeParity:
    """Tier 2 under the other execution modes, against tier 0."""

    def test_observability_on(self, monkeypatch):
        # Metrics sampling and tracing are deterministic pillars: their
        # obs.* summary counters must match across tiers too.  (The
        # profiler's obs.profile.*.seconds are wall clock and excluded
        # by not enabling it.)
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "50")
        monkeypatch.setenv("REPRO_OBS_TRACE", "1")
        soa = run_tier(2, "tc", monkeypatch)
        reference = run_tier(0, "tc", monkeypatch)
        assert identity(soa) == identity(reference)

    def test_sampled(self, monkeypatch):
        sampling = SamplingConfig(period=3, unit=500, warmup=500)
        soa = run_tier(2, "w16", monkeypatch, instructions=12000,
                       sampling=sampling)
        reference = run_tier(0, "w16", monkeypatch, instructions=12000,
                             sampling=sampling)
        assert identity(soa) == identity(reference)

    def test_checkpointed(self, monkeypatch):
        soa = run_tier(2, "w16", monkeypatch, checkpoint_every=1000)
        reference = run_tier(0, "w16", monkeypatch, checkpoint_every=1000)
        assert identity(soa) == identity(reference)


class TestKillAndResumeAtTier2:
    """Crash-resume on the tier-2 step reproduces the tier-0 answer."""

    CODE = ("import repro\n"
            "repro.run_simulation('w16', 'gzip', max_instructions=3000, "
            "checkpoint_every=1000)")

    def test_kill_resume_parity(self, tmp_path, monkeypatch):
        env = dict(os.environ)
        env.update({
            perf.PERF_FAST_ENV: "2",
            CHECKPOINT_DIR_ENV: str(tmp_path / "ckpt"),
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
            FAULTS_ENV: "kill_mid_unit attempts=*",
        })
        victim = subprocess.run([sys.executable, "-c", self.CODE], env=env,
                                capture_output=True, text=True, timeout=300)
        assert victim.returncode == 23, victim.stderr
        assert list((tmp_path / "ckpt").glob("*.ckpt")), \
            "the victim died before its first durable checkpoint"

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt"))
        resumed = run_tier(2, "w16", monkeypatch, benchmark="gzip",
                           checkpoint_every=1000)

        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt2"))
        reference = run_tier(0, "w16", monkeypatch, benchmark="gzip",
                             checkpoint_every=1000)
        assert identity(resumed) == identity(reference)
