"""Test-suite wide fixtures.

The sweep runner's disk cache is redirected to a per-session temporary
directory so unit tests stay hermetic: they still exercise the real
cache read/write path, but never see (or leave behind) results from a
previous run of a possibly different simulator version.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(cache_dir))
        yield cache_dir
