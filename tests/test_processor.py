"""Integration tests: full-pipeline simulations on kernels and suite
benchmarks, across every front-end mechanism."""

import pytest

from repro import frontend_config, run_simulation
from repro.config import PAPER_CONFIGS
from repro.core.processor import Processor
from repro.emulator.machine import execute
from repro.isa.assembler import assemble
from repro.workloads.kernels import (
    fibonacci,
    linked_list_walk,
    state_machine,
    vector_sum,
)

ALL_CONFIGS = list(PAPER_CONFIGS) + ["tc+pr-2x8w", "tc+pr-4x4w"]


@pytest.mark.parametrize("config_name", ALL_CONFIGS)
def test_every_config_commits_full_stream(config_name):
    result = run_simulation(config_name, state_machine(512),
                            max_instructions=4000)
    assert not result.timed_out
    oracle = execute(state_machine(512), 4000)
    non_nop = sum(1 for r in oracle.stream if not r.inst.is_nop)
    assert result.committed == non_nop


@pytest.mark.parametrize("config_name", ["w16", "tc", "pf-2x8w", "pr-4x4w"])
def test_kernels_run_on_all_frontends(config_name):
    for program in (vector_sum(32), fibonacci(40), linked_list_walk(16, 4)):
        result = run_simulation(config_name, program, max_instructions=3000)
        assert not result.timed_out
        assert result.committed > 0
        assert 0 < result.ipc <= 16


def test_simulation_is_deterministic():
    a = run_simulation("pr-2x8w", "gzip", max_instructions=3000)
    b = run_simulation("pr-2x8w", "gzip", max_instructions=3000)
    assert a.cycles == b.cycles
    assert a.counters == b.counters


def test_committed_path_matches_oracle():
    """Whatever the front-end speculates, commit order must be exactly the
    functional-execution order."""
    program = state_machine(256)
    config = frontend_config("pr-4x4w")
    oracle = execute(program, 3000).stream
    processor = Processor(config, program, oracle)
    processor.run()
    assert processor.finished
    non_nop = [r for r in oracle if not r.inst.is_nop]
    assert processor.committed == len(non_nop)


def test_rates_within_machine_width():
    for config_name in ("w16", "tc", "pf-2x8w"):
        result = run_simulation(config_name, "gzip", max_instructions=3000)
        assert result.fetch_rate <= 16.0 + 1e-9
        assert result.rename_rate <= 16.0 + 1e-9
        assert result.ipc <= 16.0

    # Slot utilization is a ratio of fetched to available slots.
        assert 0.0 < result.slot_utilization <= 1.0


def test_parallel_fetch_beats_w16_on_fetch_rate():
    w16 = run_simulation("w16", "gzip", max_instructions=8000)
    pf = run_simulation("pf-2x8w", "gzip", max_instructions=8000)
    assert pf.fetch_rate > w16.fetch_rate


def test_narrow_sequencers_have_higher_slot_utilization():
    pf2 = run_simulation("pf-2x8w", "gzip", max_instructions=8000)
    pf4 = run_simulation("pf-4x4w", "gzip", max_instructions=8000)
    w16 = run_simulation("w16", "gzip", max_instructions=8000)
    assert pf4.slot_utilization > pf2.slot_utilization > \
        w16.slot_utilization


def test_trace_cache_hits_accumulate():
    result = run_simulation("tc", "gzip", max_instructions=8000)
    assert result.counter("tc.hits") > 0
    assert 0.0 < result.trace_cache_hit_rate <= 1.0


def test_fragment_reuse_occurs():
    result = run_simulation("pf-2x8w", "gzip", max_instructions=8000)
    assert 0.0 < result.fragment_reuse_rate < 1.0


def test_liveout_machinery_exercised():
    result = run_simulation("pr-4x4w", "gcc", max_instructions=8000)
    assert result.counter("rename.liveout_lookups") > 0
    # The live-out path must detect at least some events on gcc.
    assert (result.counter("rename.liveout_cold")
            + result.counter("rename.liveout_mispredicts")) > 0


def test_mispredict_recovery_counts_match():
    result = run_simulation("pf-2x8w", "gcc", max_instructions=5000)
    assert result.counter("frontend.recoveries") <= \
        result.counter("frontend.control_mispredicts")
    assert result.counter("frontend.recoveries") > 0


def test_loop_kernel_has_high_predictability():
    """A counted loop is almost perfectly predictable: very few recoveries
    relative to committed instructions."""
    result = run_simulation("pf-2x8w", fibonacci(400),
                            max_instructions=2500)
    per_1k = 1000 * result.counter("frontend.recoveries") / result.committed
    assert per_1k < 8


def test_custom_program_via_api():
    program = assemble("""
    main:
        li t0, 100
    loop:
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    """)
    result = run_simulation("w16", program, max_instructions=1000)
    assert not result.timed_out
    assert result.benchmark == "program"


def test_max_cycles_timeout_flag():
    result = run_simulation("w16", "gzip", max_instructions=3000,
                            max_cycles=50)
    assert result.timed_out
    assert result.cycles == 50


def test_max_cycles_zero_runs_zero_cycles():
    """Regression: max_cycles=0 used to fall through the falsy-default
    (`max_cycles or ...`) to the full cycle budget; it must mean
    "simulate zero cycles", exactly like max_instructions=0."""
    result = run_simulation("w16", "gzip", max_instructions=3000,
                            max_cycles=0)
    assert result.cycles == 0
    assert result.committed == 0
    assert result.timed_out


def test_no_livelock_under_heavy_icache_thrash():
    """Regression: under extreme I-cache pressure a fragment's miss data
    must be consumed via fill bypass even if the line is re-evicted while
    waiting, or fetch livelocks (perl/pr-4x4w at 8 KB)."""
    config = frontend_config("pr-4x4w", total_l1_storage=8 * 1024)
    result = run_simulation(config, "gcc", max_instructions=5000)
    assert not result.timed_out
    assert result.ipc > 0.3
