"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.isa.program import DATA_BASE, TEXT_BASE, WORD_BYTES
from repro.isa.registers import LINK_REG


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("add r1, r2, r3")
        assert len(program) == 1
        inst = program.instructions[0]
        assert inst.opcode is Opcode.ADD
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)
        assert inst.addr == TEXT_BASE

    def test_addresses_are_sequential(self):
        program = assemble("nop\nnop\nnop")
        assert [i.addr for i in program.instructions] == [
            TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]

    def test_comments_and_blank_lines(self):
        program = assemble("""
            # full-line comment
            add r1, r2, r3   # trailing comment
            ; semicolon comment
            nop              ; another
        """)
        assert len(program) == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
        start:
            j end
            nop
        end:
            j start
        """)
        jump_fwd, _, jump_back = program.instructions
        assert jump_fwd.target == program.symbols["end"]
        assert jump_back.target == program.symbols["start"]

    def test_label_on_same_line_as_instruction(self):
        program = assemble("loop: addi r1, r1, -1\nbne r1, zero, loop")
        assert program.symbols["loop"] == TEXT_BASE

    def test_memory_operands(self):
        program = assemble("ld t0, 16(sp)\nst t0, -8(sp)")
        load, store = program.instructions
        assert load.imm == 16 and load.rs1 == 2
        assert store.imm == -8 and store.rs2 == load.rd

    def test_branch_operands(self):
        program = assemble("x: beq t0, t1, x")
        branch = program.instructions[0]
        assert branch.opcode is Opcode.BEQ
        assert branch.target == TEXT_BASE

    def test_entry_defaults_to_main(self):
        program = assemble("nop\nmain: nop")
        assert program.entry == TEXT_BASE + 4

    def test_entry_defaults_to_text_base_without_main(self):
        program = assemble("nop")
        assert program.entry == TEXT_BASE


class TestDataSegment:
    def test_word_directive(self):
        program = assemble("""
            .data
        vals:
            .word 1, 2, -3
        """)
        base = program.symbols["vals"]
        assert base == DATA_BASE
        assert program.data[base] == 1
        assert program.data[base + WORD_BYTES] == 2
        assert program.data[base + 2 * WORD_BYTES] == -3
        assert program.data_size == 3 * WORD_BYTES

    def test_word_with_label_reference(self):
        program = assemble("""
            .text
        handler:
            nop
            .data
        table:
            .word handler
        """)
        assert program.data[program.symbols["table"]] == \
            program.symbols["handler"]

    def test_space_directive(self):
        program = assemble("""
            .data
        buf:
            .space 64
        after:
            .word 7
        """)
        assert program.symbols["after"] == program.symbols["buf"] + 64

    def test_align_directive(self):
        program = assemble("""
            .data
            .space 12
            .align 16
        aligned:
            .word 1
        """)
        assert program.symbols["aligned"] % 16 == 0


class TestPseudoInstructions:
    def test_li_small_is_one_instruction(self):
        program = assemble("li t0, 42")
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.ADDI

    def test_li_large_expands_to_lui_ori(self):
        program = assemble("li t0, 0x12345")
        assert [i.opcode for i in program.instructions] == [
            Opcode.LUI, Opcode.ORI]

    def test_li_negative(self):
        program = assemble("li t0, -5")
        assert program.instructions[0].imm == -5

    def test_la_always_two_instructions(self):
        program = assemble("""
            la t0, x
            .data
        x:  .word 0
        """)
        assert len(program) == 2

    def test_mv(self):
        program = assemble("mv t0, t1")
        inst = program.instructions[0]
        assert inst.opcode is Opcode.ADDI and inst.imm == 0

    def test_call_and_ret(self):
        program = assemble("""
        main:
            call f
            halt
        f:
            ret
        """)
        call = program.instructions[0]
        ret = program.instructions[2]
        assert call.opcode is Opcode.JAL and call.rd == LINK_REG
        assert ret.opcode is Opcode.RET and ret.rs1 == LINK_REG

    def test_bgt_swaps_operands(self):
        program = assemble("x: bgt t0, t1, x")
        inst = program.instructions[0]
        assert inst.opcode is Opcode.BLT
        # bgt a,b == blt b,a
        assert inst.rs1 == 9 and inst.rs2 == 8

    def test_jal_with_explicit_link_register(self):
        program = assemble("x: jal t0, x")
        assert program.instructions[0].rd == 8

    def test_jalr_default_link(self):
        program = assemble("jalr t0")
        inst = program.instructions[0]
        assert inst.rd == LINK_REG and inst.rs1 == 8


class TestErrors:
    @pytest.mark.parametrize("source, fragment", [
        ("bogus r1, r2", "unknown mnemonic"),
        ("add r1, r2", "operand"),
        ("addi r1, r2, 99999", "out of 16-bit range"),
        ("ld r1, 99999(r2)", "out of range"),
        ("x: nop\nx: nop", "duplicate label"),
        (".data\n.word 1\n.text2", "unknown directive"),
        ("ld r1, r2", "bad memory operand"),
        ("add r1, r2, 5", "not a register"),
        (".word 1", ".word in text segment"),
        (".data\nadd r1, r2, r3", "instruction in data segment"),
        (".data\n.align 3", "power of two"),
        (".data\n.space -1", "negative"),
        ("j nowhere", "bad integer literal"),
    ])
    def test_rejects(self, source, fragment):
        with pytest.raises(AssemblerError, match=fragment):
            assemble(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus")
