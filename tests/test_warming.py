"""Tests for functional warming (steady-state methodology)."""

from repro import frontend_config, run_simulation
from repro.core.processor import Processor
from repro.core.warming import warm_processor
from repro.workloads.suite import get_benchmark, oracle_stream


def make_processor(config_name="pf-2x8w", bench="gzip", length=3000):
    config = frontend_config(config_name)
    program = get_benchmark(bench)
    stream = oracle_stream(bench, length).stream
    return Processor(config, program, stream), stream


class TestWarmProcessor:
    def test_trains_trace_predictor(self):
        processor, stream = make_processor()
        assert processor.trace_predictor.primary_occupancy == 0
        warm_processor(processor, stream)
        assert processor.trace_predictor.primary_occupancy > 0
        assert processor.trace_predictor.secondary_occupancy > 0

    def test_trains_bimodal(self):
        processor, stream = make_processor()
        warm_processor(processor, stream)
        assert len(processor.bimodal) > 0

    def test_fills_caches(self):
        processor, stream = make_processor()
        warm_processor(processor, stream)
        first_pc = stream[0].pc
        assert processor.memory.l1i.probe(first_pc) or \
            processor.memory.l2.probe(first_pc)

    def test_fills_trace_cache_for_tc(self):
        processor, stream = make_processor(config_name="tc")
        warm_processor(processor, stream)
        assert processor.trace_cache.stats.get("tc.fills") == 0  # reset
        # But the contents are there: a timed run should start hitting.
        processor.run()
        assert processor.stats.get("tc.hits") > 0

    def test_resets_stats(self):
        processor, stream = make_processor()
        warm_processor(processor, stream)
        assert processor.stats.get("l1i.fills") == 0
        assert processor.stats.get("l2.fills") == 0

    def test_reset_leaves_no_phantom_counters(self):
        """Warming must not leave zero-valued entries behind — they would
        pollute __contains__, as_dict() and with_prefix()."""
        processor, stream = make_processor()
        warm_processor(processor, stream)
        assert processor.stats.as_dict() == {}
        assert "l1i.fills" not in processor.stats
        assert processor.stats.with_prefix("l1i") == {}

    def test_speculative_history_cleared(self):
        processor, stream = make_processor()
        warm_processor(processor, stream)
        assert processor.trace_predictor.snapshot_history() == ()


class TestWarmingEffect:
    def test_warming_reduces_mispredictions(self):
        cold = run_simulation("pf-2x8w", "gzip", max_instructions=8000,
                              warm=False)
        hot = run_simulation("pf-2x8w", "gzip", max_instructions=8000,
                             warm=True)
        assert hot.counter("frontend.control_mispredicts") < \
            cold.counter("frontend.control_mispredicts")
        assert hot.ipc > cold.ipc

    def test_warming_improves_tc_hit_rate(self):
        cold = run_simulation("tc", "gzip", max_instructions=8000,
                              warm=False)
        hot = run_simulation("tc", "gzip", max_instructions=8000,
                             warm=True)
        assert hot.trace_cache_hit_rate > cold.trace_cache_hit_rate

    def test_warm_run_still_commits_everything(self):
        result = run_simulation("pr-4x4w", "mcf", max_instructions=5000)
        assert not result.timed_out
        assert result.committed > 0
