"""Tests for the trace predictor, live-out predictor, bimodal predictor
and return-address stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LiveOutPredictorConfig, TracePredictorConfig
from repro.frontend.fragments import FragmentKey
from repro.isa.assembler import assemble
from repro.isa.registers import LINK_REG
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.liveout import (
    LiveOutInfo,
    LiveOutPredictor,
    compute_liveouts,
)
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor


def key(pc, dirs=()):
    return FragmentKey(pc, tuple(dirs))


class TestTracePredictor:
    def make(self, **kwargs):
        return TracePredictor(TracePredictorConfig(**kwargs))

    def test_cold_predicts_none(self):
        assert self.make().predict() is None

    def test_learns_repeating_sequence(self):
        pred = self.make()
        sequence = [key(0x1000), key(0x2000, (True,)), key(0x3000)]
        # Train on several laps of the repeating sequence.
        for _ in range(8):
            for k in sequence:
                pred.train(k)
        # Walk the same sequence speculatively and check predictions.
        correct = 0
        for _ in range(3):
            for k in sequence:
                if pred.predict() == k:
                    correct += 1
                pred.push_history(k)
        assert correct >= 7  # all but perhaps the cold start

    def test_history_snapshot_restore(self):
        pred = self.make()
        for k in (key(0x1000), key(0x2000)):
            pred.push_history(k)
        snap = pred.snapshot_history()
        pred.push_history(key(0x3000))
        pred.restore_history(snap)
        assert pred.snapshot_history() == snap

    def test_hysteresis_resists_single_flip(self):
        pred = self.make()
        stable, blip = key(0x1000), key(0x9000)
        for _ in range(4):
            pred.train(stable)
            pred._retire_history.clear()  # same history context each time
        pred._retire_history.clear()
        pred.train(blip)
        pred._retire_history.clear()
        # After one contrary outcome the entry still predicts `stable`.
        assert pred.predict() == stable

    def test_secondary_table_covers_shallow_history(self):
        pred = self.make()
        # Train a pair transition repeatedly.
        for _ in range(6):
            pred.train(key(0x1000))
            pred.train(key(0x2000))
        pred.push_history(key(0x1000))
        assert pred.predict() is not None

    def test_scaled_config(self):
        config = TracePredictorConfig().scaled(1024)
        assert config.primary_entries == 1024
        assert config.secondary_entries == 256


class TestComputeLiveouts:
    def test_simple_last_writes(self):
        program = assemble("""
            add t0, t1, t2
            add t0, t0, t0
            add t3, t0, t0
        """)
        info = compute_liveouts(program.instructions)
        assert sorted(info.liveout_list()) == [8, 11]  # t0, t3
        assert not info.is_last_write(0)
        assert info.is_last_write(1)
        assert info.is_last_write(2)
        assert info.length == 3

    def test_zero_register_excluded(self):
        program = assemble("add zero, t1, t2")
        info = compute_liveouts(program.instructions)
        assert info.liveout_regs == 0

    def test_call_writes_link_register(self):
        program = assemble("x: jal x")
        info = compute_liveouts(program.instructions)
        assert info.liveout_list() == [LINK_REG]

    def test_branches_write_nothing(self):
        program = assemble("x: beq t0, t1, x")
        info = compute_liveouts(program.instructions)
        assert info.liveout_regs == 0 and info.last_writes == 0


class TestLiveOutPredictor:
    def make(self, **kwargs):
        return LiveOutPredictor(LiveOutPredictorConfig(**kwargs))

    def test_miss_then_hit(self):
        pred = self.make()
        k = key(0x1000, (True,))
        assert pred.predict(k) is None
        info = LiveOutInfo(0b1100, 0b11, 2)
        pred.train(k, info)
        assert pred.predict(k) == info

    def test_retraining_updates(self):
        pred = self.make()
        k = key(0x1000)
        pred.train(k, LiveOutInfo(1, 1, 1))
        pred.train(k, LiveOutInfo(2, 2, 2))
        assert pred.predict(k) == LiveOutInfo(2, 2, 2)

    def test_capacity_eviction(self):
        pred = self.make(entries=4, assoc=2)
        keys = [key(0x1000 + 64 * i) for i in range(64)]
        for k in keys:
            pred.train(k, LiveOutInfo(1, 1, 1))
        hits = sum(pred.predict(k) is not None for k in keys)
        assert hits < len(keys)  # small table cannot hold them all

    def test_lru_within_set(self):
        pred = self.make(entries=2, assoc=2)  # single set
        a, b, c = key(0x1000), key(0x2000), key(0x3000)
        pred.train(a, LiveOutInfo(1, 1, 1))
        pred.train(b, LiveOutInfo(2, 2, 2))
        pred.predict(a)                      # promote a
        pred.train(c, LiveOutInfo(3, 3, 3))  # evicts b
        assert pred.predict(a) is not None
        assert pred.predict(c) is not None


class TestBimodal:
    def test_defaults_not_taken(self):
        assert not BimodalPredictor().predict(0x1000)

    def test_learns_taken(self):
        pred = BimodalPredictor()
        pred.train(0x1000, True)
        assert pred.predict(0x1000)

    def test_hysteresis(self):
        pred = BimodalPredictor()
        for _ in range(4):
            pred.train(0x1000, True)
        pred.train(0x1000, False)
        assert pred.predict(0x1000)  # one contrary outcome does not flip

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=3)

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_counter_stays_bounded(self, outcomes):
        pred = BimodalPredictor(entries=16)
        for taken in outcomes:
            pred.train(0x1000, taken)
        assert pred._counters.get(pred._index(0x1000), 1) in (0, 1, 2, 3)


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_depth_limit_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for addr in (0x100, 0x200, 0x300):
            ras.push(addr)
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        snap = ras.snapshot()
        ras.push(0x200)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 0x100

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)
