"""Tests for configuration validation and the named paper configurations."""

import pytest

from repro.config import (
    KB,
    PAPER_CONFIGS,
    BackEndConfig,
    CacheConfig,
    FragmentConfig,
    FrontEndConfig,
    LiveOutPredictorConfig,
    TraceCacheConfig,
    TracePredictorConfig,
    frontend_config,
)
from repro.errors import ConfigError


class TestValidation:
    def test_cache_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 2, 64, 1)

    def test_cache_rejects_tiny_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(64, 4, 64, 1)

    def test_cache_num_sets(self):
        assert CacheConfig(64 * KB, 2, 64, 1).num_sets == 512

    def test_frontend_width_must_divide(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(fetch_kind="pf", sequencers=3)

    def test_frontend_unknown_kinds(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(fetch_kind="bogus")
        with pytest.raises(ConfigError):
            FrontEndConfig(rename_kind="bogus")

    def test_tc_requires_trace_cache(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(fetch_kind="tc")

    def test_fragment_config_limits(self):
        with pytest.raises(ConfigError):
            FragmentConfig(max_length=8, cond_branch_limit=9)

    def test_backend_dispatch_latency(self):
        with pytest.raises(ConfigError):
            BackEndConfig(dispatch_latency=-1)

    def test_liveout_validation(self):
        with pytest.raises(ConfigError):
            LiveOutPredictorConfig(entries=1000)

    def test_trace_predictor_scaled(self):
        scaled = TracePredictorConfig().scaled(8192)
        assert scaled.primary_entries == 8192
        assert scaled.secondary_entries == 2048


class TestNamedConfigs:
    def test_all_paper_configs_build(self):
        for name in PAPER_CONFIGS:
            config = frontend_config(name)
            assert config.backend.window_size == 256

    def test_w16(self):
        config = frontend_config("w16")
        assert config.frontend.fetch_kind == "w16"
        assert config.frontend.width == 16
        assert config.memory.l1i.size_bytes == 64 * KB
        assert config.memory.l1i.banks == 1

    def test_tc_splits_storage(self):
        config = frontend_config("tc")
        assert config.memory.l1i.size_bytes == 32 * KB
        assert config.frontend.trace_cache.size_bytes == 32 * KB

    def test_tc2x_doubles_storage(self):
        config = frontend_config("tc2x")
        assert config.memory.l1i.size_bytes == 64 * KB
        assert config.frontend.trace_cache.size_bytes == 64 * KB

    def test_pf_geometry(self):
        config = frontend_config("pf-2x8w")
        assert config.frontend.sequencers == 2
        assert config.frontend.sequencer_width == 8
        assert config.frontend.rename_kind == "monolithic"
        assert config.memory.l1i.banks == 16

    def test_pr_geometry(self):
        config = frontend_config("pr-4x4w")
        assert config.frontend.sequencers == 4
        assert config.frontend.renamers == 4
        assert config.frontend.renamer_width == 4
        assert config.frontend.rename_kind == "parallel"

    def test_tc_plus_parallel_rename(self):
        config = frontend_config("tc+pr-2x8w")
        assert config.frontend.fetch_kind == "tc"
        assert config.frontend.rename_kind == "parallel"
        assert config.frontend.renamers == 2

    def test_storage_override(self):
        config = frontend_config("pr-2x8w", total_l1_storage=8 * KB)
        assert config.memory.l1i.size_bytes == 8 * KB

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            frontend_config("pf-3x5w")

    def test_replace_is_functional(self):
        config = frontend_config("w16")
        changed = config.replace(fragment=FragmentConfig(max_length=8))
        assert changed.fragment.max_length == 8
        assert config.fragment.max_length == 16

    def test_fragment_buffer_storage_is_1kb(self):
        # 16 buffers x 16 instructions x 4 bytes (Section 5's accounting).
        config = frontend_config("pf-2x8w")
        fe = config.frontend
        assert fe.num_fragment_buffers * fe.fragment_buffer_size * 4 == 1024


class TestDelayConfigs:
    def test_pd_configs_build(self):
        for name in ("pd-2x8w", "pd-4x4w"):
            config = frontend_config(name)
            assert config.frontend.rename_kind == "delay"
            assert config.frontend.fetch_kind == "pf"


def test_buffer_smaller_than_fragment_rejected():
    """A fragment must fit its buffer; the processor validates coherence."""
    import dataclasses

    from repro.core.processor import Processor
    from repro.emulator.machine import execute
    from repro.workloads.kernels import fibonacci

    config = frontend_config("pf-2x8w")
    config = config.replace(frontend=dataclasses.replace(
        config.frontend, fragment_buffer_size=8))
    program = fibonacci(10)
    oracle = execute(program, 100).stream
    with pytest.raises(ConfigError):
        Processor(config, program, oracle)
