"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.obs import validate_chrome_trace


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "w16", "gzip"])
        assert args.config == "w16" and args.benchmark == "gzip"
        assert args.instructions is None and not args.cold

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus", "gzip"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.benchmarks is None and args.workers is None
        assert not args.no_cache and not args.clear_cache
        assert "w16" in args.configs

    def test_sweep_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--benchmarks", "bogus"])

    def test_pipeview_flag_forms(self):
        args = build_parser().parse_args(["run", "w16", "gzip"])
        assert args.pipeview is None
        args = build_parser().parse_args(["run", "w16", "gzip",
                                          "--pipeview"])
        assert args.pipeview == 32
        args = build_parser().parse_args(["run", "w16", "gzip",
                                          "--pipeview=8"])
        assert args.pipeview == 8

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host is None and args.port is None
        assert args.max_active == 2 and args.budget is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.server == "127.0.0.1"
        assert "w16" in args.configs and not args.json

    def test_submit_server_parsing(self):
        from repro.__main__ import _parse_server
        from repro.service import DEFAULT_HOST, DEFAULT_PORT

        assert _parse_server("10.0.0.9:9000") == ("10.0.0.9", 9000)
        assert _parse_server("10.0.0.9") == ("10.0.0.9", DEFAULT_PORT)
        assert _parse_server(":9000") == (DEFAULT_HOST, 9000)

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 1000 and args.concurrency == 64
        assert not args.no_verify and args.seed == 0

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "pr-2x8w", "gzip"])
        assert args.output == "repro-trace.json"
        assert args.limit == 200_000 and args.sample is None

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "w16", "gzip"])
        assert args.sample is None and not args.json


class TestCommands:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "w16", "gzip", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "w16" in out

    def test_run_with_counters(self, capsys):
        assert main(["run", "pf-2x8w", "gzip", "-n", "1500",
                     "--counters"]) == 0
        out = capsys.readouterr().out
        assert "fetch.insts" in out

    def test_compare(self, capsys):
        assert main(["compare", "gzip", "--configs", "w16", "tc",
                     "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "w16" in out and "tc" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "256-entry" in capsys.readouterr().out

    def test_bench_info(self, capsys):
        assert main(["bench-info", "--benchmarks", "mcf",
                     "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "avg frag" in out

    def test_cold_run(self, capsys):
        assert main(["run", "w16", "gzip", "-n", "1500", "--cold"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_sweep_runs_matrix_and_reports(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--configs", "w16", "tc",
                "--benchmarks", "gzip", "mcf", "-n", "1500",
                "--workers", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep summary" in out
        assert "executed      4" in out
        # Warm cache: the repeat sweep must execute nothing.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed      0" in out
        assert "disk hits     4" in out

    def test_sweep_clear_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--configs", "w16", "--benchmarks", "gzip",
                     "-n", "1500"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--clear-cache"]) == 0
        assert "cleared 1 cached result(s)" in capsys.readouterr().out

    def test_sweep_no_cache_leaves_disk_empty(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--configs", "w16", "--benchmarks", "gzip",
                     "-n", "1500", "--no-cache"]) == 0
        assert not list(tmp_path.glob("*.json"))


class TestObservabilityCommands:
    def test_run_json(self, capsys):
        assert main(["run", "w16", "gzip", "-n", "1500", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"] == "w16"
        assert payload["cycles"] > 0 and payload["ipc"] > 0
        assert "fetch.insts" in payload["counters"]

    def test_run_pipeview_renders_diagram(self, capsys):
        assert main(["run", "w16", "gzip", "-n", "1500",
                     "--pipeview=6"]) == 0
        out = capsys.readouterr().out
        assert "R=rename" in out and "C=commit" in out
        # Six instruction rows between the |...| cycle rails.
        assert sum(1 for line in out.splitlines()
                   if line.rstrip().endswith("|")) == 6

    def test_run_json_with_pipeview_summary(self, capsys):
        assert main(["run", "w16", "gzip", "-n", "1500", "--json",
                     "--pipeview"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipeline"]["instructions"] > 0
        assert payload["pipeline"]["avg_lifetime_cycles"] > 0

    def test_run_sample_prints_gauge_summary(self, capsys):
        assert main(["run", "pr-2x8w", "gzip", "-n", "1500",
                     "--sample", "50"]) == 0
        out = capsys.readouterr().out
        assert "gauge" in out and "window.used" in out

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "pr-2x8w", "gzip", "-n", "1500",
                     "-o", str(path), "--sample", "50"]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) > 0
        assert "perfetto" in capsys.readouterr().out

    def test_profile_reports_phases(self, capsys):
        assert main(["profile", "w16", "gzip", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "fetch" in out and "us/call" in out

    def test_profile_json(self, capsys):
        assert main(["profile", "w16", "gzip", "-n", "1500",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["profile"]) >= {"execute", "commit",
                                           "rename", "fetch"}

    def test_sweep_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--configs", "w16", "--benchmarks", "gzip",
                     "-n", "1500", "--workers", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 1
        assert payload["failures"] == []
        assert payload["summary"]["sweep.jobs"] == 1


class TestDurableSweepCli:
    def test_parser_checkpoint_and_resume_flags(self):
        args = build_parser().parse_args(["sweep", "--checkpoint", "500"])
        assert args.checkpoint == 500 and args.resume is None
        args = build_parser().parse_args(["sweep", "--resume"])
        assert args.resume == "latest"
        args = build_parser().parse_args(["sweep", "--resume", "cafe12"])
        assert args.resume == "cafe12"
        args = build_parser().parse_args(["run", "w16", "gzip",
                                          "--checkpoint", "500"])
        assert args.checkpoint == 500

    def test_parser_serve_journal_flags(self):
        args = build_parser().parse_args(["serve"])
        assert not args.no_journal and args.journal_path is None
        args = build_parser().parse_args(["serve", "--no-journal",
                                          "--journal-path", "j.ndjson"])
        assert args.no_journal and args.journal_path == "j.ndjson"

    def test_sweep_writes_manifest_and_resumes(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "--configs", "w16", "--benchmarks", "gzip",
                "-n", "1500", "--checkpoint", "600", "--workers", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resume with: repro sweep --resume" in out
        sweep_id = out.split("sweep ")[1].split()[0]
        assert (tmp_path / "sweeps" / f"{sweep_id}.json").exists()

        # Explicit resume of the (completed) sweep serves from cache.
        assert main(["sweep", "--resume", sweep_id]) == 0
        out = capsys.readouterr().out
        assert f"resuming sweep {sweep_id}" in out
        assert "executed      0" in out
        assert "disk hits     1" in out

    def test_bare_resume_with_nothing_incomplete_fails(self, capsys,
                                                       tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--configs", "w16", "--benchmarks", "gzip",
                     "-n", "1500", "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--resume"]) == 1
        assert "no incomplete sweep" in capsys.readouterr().err

    def test_resume_unknown_id_fails(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "--resume", "feedfacecafe"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_checkpoint_resumable_output_matches(self, capsys,
                                                     tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ck"))
        argv = ["run", "w16", "gzip", "-n", "1500", "--json",
                "--checkpoint", "600"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first
