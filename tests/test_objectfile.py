"""Tests for the .rpo object-file format."""

import pytest

from repro.emulator.machine import Machine, execute
from repro.isa.assembler import assemble
from repro.isa.objectfile import ObjectFileError, dumps, load, loads, save
from repro.workloads.characteristics import WorkloadSpec
from repro.workloads.generator import generate_program
from repro.workloads.kernels import ALL_KERNELS


class TestRoundTrip:
    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_kernels_roundtrip_exactly(self, kernel):
        original = ALL_KERNELS[kernel]()
        again = loads(dumps(original))
        assert again.instructions == original.instructions
        assert again.data == original.data
        assert again.symbols == original.symbols
        assert again.entry == original.entry
        assert again.name == original.name
        assert again.data_size == original.data_size

    def test_behaviour_preserved(self):
        original = ALL_KERNELS["bubble_sort"]()
        again = loads(dumps(original))
        assert execute(again).outputs == execute(original).outputs

    def test_generated_workload_roundtrips(self):
        spec = WorkloadSpec(name="objf", seed=11, num_functions=6,
                            hot_functions=3)
        original = generate_program(spec)
        again = loads(dumps(original))
        a = Machine(original).run(2000).stream
        b = Machine(again).run(2000).stream
        assert [(r.pc, r.taken) for r in a] == [(r.pc, r.taken) for r in b]

    def test_file_io(self, tmp_path):
        original = ALL_KERNELS["fibonacci"]()
        path = tmp_path / "fib.rpo"
        save(original, path)
        assert load(path).instructions == original.instructions

    def test_loads_name_override(self):
        blob = dumps(ALL_KERNELS["fibonacci"]())
        assert loads(blob, name="renamed").name == "renamed"

    def test_simulates_after_reload(self, tmp_path):
        from repro import run_simulation
        original = ALL_KERNELS["hash"]()
        path = tmp_path / "hash.rpo"
        save(original, path)
        result = run_simulation("pf-2x8w", load(path),
                                max_instructions=2000)
        assert not result.timed_out


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ObjectFileError, match="magic"):
            loads(b"NOPE" + b"\x00" * 64)

    def test_truncated(self):
        blob = dumps(ALL_KERNELS["fibonacci"]())
        with pytest.raises(ObjectFileError, match="truncated"):
            loads(blob[:20])

    def test_trailing_garbage(self):
        blob = dumps(ALL_KERNELS["fibonacci"]())
        with pytest.raises(ObjectFileError, match="trailing"):
            loads(blob + b"\x00")

    def test_rejects_float_data(self):
        program = assemble("halt")
        program.data[program.data_base] = 1.5
        with pytest.raises(ObjectFileError, match="float"):
            dumps(program)
