"""Documentation drift guards.

Two ways docs rot are checked mechanically:

* **Knob drift** — every ``REPRO_*`` environment variable mentioned in
  the docs must exist in :data:`repro.config.ENV_KNOBS` (no stale
  knobs), and every registered knob must be documented somewhere (no
  undocumented knobs).
* **Docstring lint** — ``tools/check_docstrings.py`` must pass, so the
  public API keeps its docstrings as it grows.
"""

import re
import subprocess
import sys
from pathlib import Path

from repro.config import ENV_KNOBS

REPO = Path(__file__).resolve().parent.parent

#: The documentation surfaces the knob-drift test patrols.
DOC_FILES = [REPO / "README.md", REPO / "EXPERIMENTS.md",
             *sorted((REPO / "docs").glob("*.md"))]

# Wildcard mentions like ``REPRO_OBS_*`` are prose, not knob names.
_KNOB_RE = re.compile(r"\bREPRO_[A-Z_]+\b(?!\*)")


def _documented_knobs():
    found = {}
    for path in DOC_FILES:
        for knob in _KNOB_RE.findall(path.read_text()):
            found.setdefault(knob, path.name)
    return found


class TestKnobDrift:
    def test_doc_surfaces_exist(self):
        for path in DOC_FILES:
            assert path.is_file(), f"documentation file missing: {path}"

    def test_no_unknown_knobs_in_docs(self):
        """Docs must not mention knobs the code no longer recognises."""
        unknown = {knob: where
                   for knob, where in _documented_knobs().items()
                   if knob not in ENV_KNOBS}
        assert not unknown, (
            f"docs mention unregistered REPRO_* knobs {unknown}; either "
            "the doc is stale or config.ENV_KNOBS needs the new knob")

    def test_every_registered_knob_is_documented(self):
        """Every knob in config.ENV_KNOBS must appear in the docs."""
        documented = _documented_knobs()
        missing = sorted(k for k in ENV_KNOBS if k not in documented)
        assert not missing, (
            f"registered knobs undocumented in {[p.name for p in DOC_FILES]}:"
            f" {missing}")

    def test_registry_descriptions_nonempty(self):
        for knob, description in ENV_KNOBS.items():
            assert knob.startswith("REPRO_")
            assert description.strip(), f"{knob} has no description"


class TestDocstringLint:
    def test_public_api_docstrings(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docstrings.py")],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stdout + result.stderr
