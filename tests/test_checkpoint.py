"""Tests for durable checkpoint/restore (``repro.checkpoint``).

Five concerns:

* **Config resolution** — the ``REPRO_CHECKPOINT*`` knobs and their
  precedence against explicit arguments.
* **Snapshot round-trip** — capture + restore onto a fresh processor
  continues bit-identically to the donor (counters included).
* **Kill-and-resume parity** — a run checkpointed every N committed
  instructions, ``os._exit``'d by the ``kill_mid_unit`` fault, and
  resumed in a fresh process produces a `SimulationResult` that is
  bit-identical to an uninterrupted run — for full-detail *and*
  sampled modes (the acceptance criterion).
* **Corruption** — torn snapshots (including ones torn by the
  ``checkpoint_corrupt`` fault) are quarantined to ``*.ckpt.corrupt``
  and resume falls back to the previous snapshot, or to zero.
* **Checkpoint seam edges** — ``run_until`` past end-of-stream,
  ``restart_at(0)``, back-to-back restarts, and restart after a
  watchdog ``DeadlockError``.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro import checkpoint, frontend_config, run_simulation
from repro.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_ENV,
    CHECKPOINT_KEEP_ENV,
    CHECKPOINT_STATS,
    CheckpointManager,
    ProcessorSnapshot,
    resolve_checkpoint_every,
    resolve_keep,
    run_fingerprint,
)
from repro.core.invariants import PipelineWatchdog
from repro.core.processor import Processor
from repro.core.warming import warm_processor
from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.experiments.runner import SweepJob
from repro.faults import FAULTS_ENV
from repro.sampling import SamplingConfig, prep

LENGTH = 3000


@pytest.fixture(autouse=True)
def hermetic_env(monkeypatch, tmp_path):
    """Isolate every test from ambient checkpoint/fault/cache state."""
    monkeypatch.delenv(CHECKPOINT_ENV, raising=False)
    monkeypatch.delenv(CHECKPOINT_KEEP_ENV, raising=False)
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt"))


def make_processor(config_name="w16", bench="gzip", length=LENGTH):
    config = frontend_config(config_name)
    program, result, _ = prep.get_oracle(bench, length)
    return Processor(config, program, result.stream,
                     watchdog=None, invariants=None)


def result_identity(result):
    """Everything that must survive kill + resume, bit for bit."""
    return (result.cycles, result.committed, result.ipc,
            dict(result.counters))


class TestResolution:
    def test_unset_env_means_off(self):
        assert resolve_checkpoint_every(None) is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_ENV, "2500")
        assert resolve_checkpoint_every(None) == 2500

    def test_explicit_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_ENV, "2500")
        assert resolve_checkpoint_every(700) == 700

    def test_false_blocks_env(self, monkeypatch):
        """``checkpoint_every=False`` pins a run to no checkpoints even
        under ``REPRO_CHECKPOINT`` (how sweep workers stay explicit)."""
        monkeypatch.setenv(CHECKPOINT_ENV, "2500")
        assert resolve_checkpoint_every(False) is None

    def test_zero_and_negative_disable(self):
        assert resolve_checkpoint_every(0) is None
        assert resolve_checkpoint_every(-5) is None

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_ENV, "soon")
        with pytest.raises(ConfigError):
            resolve_checkpoint_every(None)

    def test_keep_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_KEEP_ENV, "0")
        assert resolve_keep() == 1

    def test_fingerprint_separates_runs(self):
        config = frontend_config("w16")
        base = run_fingerprint(config, "stream-a", True, None, 1000)
        assert base == run_fingerprint(config, "stream-a", True, None, 1000)
        assert base != run_fingerprint(config, "stream-a", True, None, 500)
        assert base != run_fingerprint(config, "stream-a", False, None, 1000)
        assert base != run_fingerprint(config, "stream-b", True, None, 1000)
        assert base != run_fingerprint(
            config, "stream-a", True, (16, 1000, 1000), 1000)
        assert base != run_fingerprint(
            frontend_config("tc"), "stream-a", True, None, 1000)


class TestSnapshotRoundTrip:
    def test_restore_continues_bit_identically(self):
        donor = make_processor()
        warm_processor(donor, donor._oracle)
        reference = make_processor()
        warm_processor(reference, reference._oracle)

        assert donor.run_until(1500)
        snap = ProcessorSnapshot.capture(donor, "fp")
        donor.restart_at(donor.committed)
        assert donor.run_until(LENGTH)
        donor.stamp_summary()

        resumed = make_processor()          # cold: restore supplies warmth
        snap.restore(resumed)
        assert resumed.committed == 1500
        assert resumed.run_until(LENGTH)
        resumed.stamp_summary()

        assert reference.run_until(1500)
        reference.restart_at(reference.committed)
        assert reference.run_until(LENGTH)
        reference.stamp_summary()

        assert resumed.stats.as_dict() == reference.stats.as_dict()
        assert resumed.stats.as_dict() == donor.stats.as_dict()
        assert resumed.now == reference.now

    def test_snapshot_is_isolated_from_donor(self):
        donor = make_processor()
        warm_processor(donor, donor._oracle)
        donor.run_until(1000)
        snap = ProcessorSnapshot.capture(donor, "fp")
        counters_then = dict(snap.stats_state[0])
        donor.restart_at(donor.committed)
        donor.run_until(LENGTH)
        assert dict(snap.stats_state[0]) == counters_then


class TestManager:
    def _snap_at(self, processor, index, fingerprint="fp"):
        processor.run_until(index)
        snap = ProcessorSnapshot.capture(processor, fingerprint)
        processor.restart_at(processor.committed)
        return snap

    def test_store_latest_roundtrip(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        manager = CheckpointManager("fp", directory=tmp_path)
        manager.store(self._snap_at(processor, 600))
        loaded = manager.latest()
        assert loaded is not None and loaded.index == 600

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        manager = CheckpointManager("fp", directory=tmp_path)
        manager.store(self._snap_at(processor, 600))
        manager.store(self._snap_at(processor, 1200))
        newest = manager.path_for(1200)
        newest.write_bytes(newest.read_bytes()[:40])

        corrupt = CHECKPOINT_STATS.get("checkpoint.corrupt")
        loaded = manager.latest()
        assert loaded is not None and loaded.index == 600
        assert CHECKPOINT_STATS.get("checkpoint.corrupt") == corrupt + 1
        assert newest.with_name(newest.name + ".corrupt").exists()

    def test_all_corrupt_falls_back_to_zero(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        manager = CheckpointManager("fp", directory=tmp_path)
        manager.store(self._snap_at(processor, 600))
        manager.path_for(600).write_bytes(b"torn")
        assert manager.latest() is None

    def test_wrong_fingerprint_is_ignored(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        CheckpointManager("other", directory=tmp_path).store(
            self._snap_at(processor, 600, fingerprint="other"))
        assert CheckpointManager("fp", directory=tmp_path).latest() is None

    def test_wrong_typed_pickle_is_corrupt(self, tmp_path):
        manager = CheckpointManager("fp", directory=tmp_path)
        manager.path_for(600).write_bytes(pickle.dumps(["not", "a", "snap"]))
        assert manager.latest() is None
        assert manager.path_for(600).with_name(
            manager.path_for(600).name + ".corrupt").exists()

    def test_prune_keeps_newest(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        manager = CheckpointManager("fp", directory=tmp_path, keep=2)
        for index in (500, 1000, 1500, 2000):
            manager.store(self._snap_at(processor, index))
        kept = sorted(index for index, _ in manager._candidates())
        assert kept == [1500, 2000]

    def test_clear_removes_everything(self, tmp_path):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        manager = CheckpointManager("fp", directory=tmp_path)
        manager.store(self._snap_at(processor, 600))
        manager.clear()
        assert manager.latest() is None
        assert list(tmp_path.glob("*.ckpt")) == []


def _run_victim(tmp_path, extra_env, code):
    """Run *code* in a subprocess that the kill fault will ``_exit(23)``."""
    env = dict(os.environ)
    env.update(extra_env)
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300)


class TestKillAndResume:
    """The acceptance criterion: kill mid-run, resume, compare bits."""

    CODE = ("import repro\n"
            "from repro.sampling import SamplingConfig\n"
            "repro.run_simulation("
            "{config!r}, {bench!r}, max_instructions={length}, "
            "checkpoint_every={every}, sampling={sampling})")

    @staticmethod
    def _sampling_arg(sampling):
        return (None if sampling is None
                else SamplingConfig(period=sampling[0], unit=sampling[1],
                                    warmup=sampling[2]))

    def _parity(self, tmp_path, monkeypatch, config, bench, length,
                every, sampling):
        sampling_expr = (
            "None" if sampling is None
            else "SamplingConfig(period={}, unit={}, warmup={})".format(
                *sampling))
        code = self.CODE.format(config=config, bench=bench, length=length,
                                every=every, sampling=sampling_expr)
        victim = _run_victim(tmp_path, {
            CHECKPOINT_DIR_ENV: str(tmp_path / "ckpt"),
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
            FAULTS_ENV: "kill_mid_unit attempts=*",
        }, code)
        assert victim.returncode == 23, victim.stderr
        assert list((tmp_path / "ckpt").glob("*.ckpt")), \
            "the victim died before its first durable checkpoint"

        resumed_marker = CHECKPOINT_STATS.get("checkpoint.resumed")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        resumed = run_simulation(config, bench, max_instructions=length,
                                 checkpoint_every=every,
                                 sampling=self._sampling_arg(sampling))
        assert CHECKPOINT_STATS.get("checkpoint.resumed") \
            == resumed_marker + 1

        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt2"))
        reference = run_simulation(config, bench, max_instructions=length,
                                   checkpoint_every=every,
                                   sampling=self._sampling_arg(sampling))
        assert result_identity(resumed) == result_identity(reference)
        return resumed

    def test_full_detail_parity(self, tmp_path, monkeypatch):
        self._parity(tmp_path, monkeypatch, "w16", "gzip", LENGTH,
                     every=1000, sampling=None)

    def test_trace_cache_config_parity(self, tmp_path, monkeypatch):
        self._parity(tmp_path, monkeypatch, "tc", "mcf", LENGTH,
                     every=1000, sampling=None)

    def test_sampled_parity(self, tmp_path, monkeypatch):
        resumed = self._parity(tmp_path, monkeypatch, "w16", "gcc", 12000,
                               every=1500, sampling=(3, 500, 500))
        # Sampled checkpointing is perturbation-free: the resumed run
        # also matches a run that never checkpointed at all.
        plain = run_simulation("w16", "gcc", max_instructions=12000,
                               sampling=self._sampling_arg((3, 500, 500)))
        assert result_identity(resumed) == result_identity(plain)

    def test_completed_run_clears_checkpoints(self, tmp_path, monkeypatch):
        run_simulation("w16", "gzip", max_instructions=LENGTH,
                       checkpoint_every=1000)
        assert list((tmp_path / "ckpt").glob("*.ckpt")) == []

    def test_checkpoint_corrupt_fault_still_completes(self, tmp_path,
                                                      monkeypatch):
        """Every snapshot torn on write -> resume falls back to zero and
        the rerun still finishes with the uninterrupted answer."""
        code = self.CODE.format(config="w16", bench="gzip", length=LENGTH,
                                every=1000, sampling=None)
        victim = _run_victim(tmp_path, {
            CHECKPOINT_DIR_ENV: str(tmp_path / "ckpt"),
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
            FAULTS_ENV: "checkpoint_corrupt keep=0.2; kill_mid_unit attempts=*",
        }, code)
        assert victim.returncode == 23, victim.stderr

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        fallback = CHECKPOINT_STATS.get("checkpoint.fallback")
        resumed = run_simulation("w16", "gzip", max_instructions=LENGTH,
                                 checkpoint_every=1000)
        assert CHECKPOINT_STATS.get("checkpoint.fallback") > fallback

        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "ckpt2"))
        reference = run_simulation("w16", "gzip", max_instructions=LENGTH,
                                   checkpoint_every=1000)
        assert result_identity(resumed) == result_identity(reference)


class TestSweepJobCadence:
    def test_cadence_joins_cache_key_only_when_set(self):
        plain = SweepJob("w16", "gzip", LENGTH)
        cadenced = SweepJob("w16", "gzip", LENGTH, checkpoint=1000)
        assert plain.cache_key() != cadenced.cache_key()
        assert SweepJob("w16", "gzip", LENGTH, checkpoint=None).cache_key() \
            == plain.cache_key()

    def test_describe_mentions_cadence(self):
        assert "ckpt=1000" in SweepJob("w16", "gzip", LENGTH,
                                       checkpoint=1000).describe()
        assert "ckpt" not in SweepJob("w16", "gzip", LENGTH).describe()


class TestSeamEdges:
    """Satellite: ``run_until`` / ``restart_at`` edge cases."""

    def test_stop_at_past_end_of_stream_clamps(self):
        processor = make_processor(length=1000)
        warm_processor(processor, processor._oracle)
        assert processor.run_until(10 ** 9)
        assert processor.committed == processor.stream_length == 1000

    def test_restart_at_zero_replays_from_scratch(self):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        assert processor.run_until(800)
        processor.restart_at(0)
        assert processor.committed == 0
        assert processor.run_until(800)
        assert processor.committed == 800

    def test_back_to_back_restarts(self):
        processor = make_processor()
        warm_processor(processor, processor._oracle)
        processor.run_until(500)
        processor.restart_at(500)
        processor.restart_at(500)
        assert processor.committed == 500
        assert processor.run_until(900)
        assert processor.committed == 900

    def test_restart_after_deadlock_error_recovers(self):
        config = frontend_config("w16")
        program, result, _ = prep.get_oracle("gzip", LENGTH)
        strangled = Processor(config, program, result.stream,
                              watchdog=PipelineWatchdog(stall_limit=1),
                              invariants=None)
        warm_processor(strangled, result.stream)
        with pytest.raises(DeadlockError):
            strangled.run_until(LENGTH)
        committed = strangled.committed
        strangled.watchdog = None        # operator widens the window...
        strangled.restart_at(committed)  # ...and resumes mid-stream
        assert strangled.run_until(min(committed + 500, LENGTH))
        assert strangled.committed == min(committed + 500, LENGTH)

    def test_restart_at_rejects_stream_length(self):
        processor = make_processor(length=1000)
        with pytest.raises(SimulationError):
            processor.restart_at(1000)
