"""Tests for interval-sampled simulation (``repro.sampling``).

Five concerns:

* **Chunked warming parity** — feeding the stream through
  :class:`WarmingState` in chunks must leave every warmed structure
  bit-identical to the whole-stream pass (the property that licenses
  fast-forwarding gaps incrementally).
* **Snapshot warming** — cloning a cached donor must be bit-identical
  to training the processor directly.
* **Prep cache** — oracle streams and programs are shared in-process
  and across processes (the ``.repro_cache`` disk bundle) without
  breaking the instruction-object identity the decode cache relies on.
* **Sampling engine** — config resolution, the checkpoint seam,
  deterministic results across processes, and the ``sampling.*``
  counter contract.
* **Accuracy** — on the pinned perf matrix at 8x the default length,
  sampled IPC stays within 3% of the full-detail reference (the
  acceptance bound; see docs/PERFORMANCE.md).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import frontend_config, run_simulation
from repro.core.processor import Processor
from repro.core.warming import WarmingState, warm_processor
from repro.errors import ReproError, SimulationError
from repro.experiments.runner import SweepJob, run_job
from repro.sampling import SamplingConfig, clear_prep_caches
from repro.sampling import engine as sampling_engine
from repro.sampling import prep
from repro.sampling.engine import resolve_sampling, run_sampled
from repro.workloads import suite

#: The accuracy harness scale: 8x the default experiment length, where
#: sampling has enough measured units for the CLT bound to mean something.
ACCURACY_BENCHMARK = "gcc"
ACCURACY_INSTRUCTIONS = 8 * suite.DEFAULT_SIM_INSTRUCTIONS
ACCURACY_BOUND = 0.03
PINNED_MATRIX = ("w16", "tc", "pr-2x8w")


def make_processor(config_name="pf-2x8w", bench="gzip", length=3000):
    config = frontend_config(config_name)
    program = suite.get_benchmark(bench)
    stream = suite.oracle_stream(bench, length).stream
    processor = Processor(config, program, stream,
                          watchdog=None, invariants=None)
    return processor, stream


def structure_state(processor):
    """Every warmed structure's complete state, for bit-exact comparison."""
    predictor = processor.trace_predictor
    state = {
        "bimodal": dict(processor.bimodal._counters),
        "primary": {index: (entry.key, entry.counter)
                    for index, entry in sorted(predictor._primary.items())},
        "secondary": {index: (entry.key, entry.counter)
                      for index, entry in sorted(predictor._secondary.items())},
        "history": tuple(predictor._history),
        "retire_history": tuple(predictor._retire_history),
        "liveout": [list(s.items())
                    for s in processor.liveout_predictor._sets],
        "l1i": [list(s.keys()) for s in processor.memory.l1i._sets],
        "l1d": [list(s.keys()) for s in processor.memory.l1d._sets],
        "l2": [list(s.keys()) for s in processor.memory.l2._sets],
    }
    if processor.trace_cache is not None:
        state["tc"] = [list(s.items()) for s in processor.trace_cache._sets]
    return state


class TestChunkedWarmingParity:
    """Chunk boundaries must be invisible to every warmed structure."""

    @pytest.mark.parametrize("config_name", ["pf-2x8w", "tc"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 977])
    def test_bit_identical_to_whole_stream(self, config_name, chunk_size):
        whole, stream = make_processor(config_name)
        chunked, _ = make_processor(config_name)
        warm_processor(whole, stream)
        warm_processor(chunked, stream, chunk_size=chunk_size)
        assert structure_state(chunked) == structure_state(whole)

    def test_feed_after_finish_raises(self):
        processor, stream = make_processor()
        state = WarmingState(processor)
        state.feed(stream)
        state.finish()
        with pytest.raises(RuntimeError):
            state.feed(stream)

    def test_discard_partial_drops_pending_fragment(self):
        processor, stream = make_processor()
        state = WarmingState(processor)
        # Find a prefix that ends mid-fragment: cut just after a
        # non-branch record so a carve is guaranteed to be in progress.
        cut = next(i for i, r in enumerate(stream[:200], start=1)
                   if not r.inst.is_nop and not r.inst.is_cond_branch
                   and not r.inst.is_indirect)
        state.feed(stream[:cut])
        dropped = state.discard_partial()
        assert dropped > 0
        assert state.discard_partial() == 0  # idempotent once empty

    def test_feed_caches_trains_nothing(self):
        processor, stream = make_processor(config_name="tc")
        state = WarmingState(processor)
        state.feed_caches(stream)
        assert len(processor.bimodal) == 0
        assert processor.trace_predictor.primary_occupancy == 0
        assert sum(len(s) for s in processor.trace_cache._sets) == 0
        first_pc = stream[0].pc
        assert processor.memory.l1i.probe(first_pc) or \
            processor.memory.l2.probe(first_pc)


class TestSnapshotWarming:
    """Cloning the cached donor == training directly, bit for bit."""

    @pytest.mark.parametrize("config_name", ["pf-2x8w", "tc"])
    def test_clone_matches_direct_warming(self, config_name):
        clear_prep_caches()
        program, execution, key = prep.get_oracle("gzip", 3000)
        oracle = execution.stream
        config = frontend_config(config_name)

        direct = Processor(config, program, oracle,
                           watchdog=None, invariants=None)
        warm_processor(direct, oracle)

        for _ in range(2):  # second pass exercises the cache-hit path
            cloned = Processor(config, program, oracle,
                               watchdog=None, invariants=None)
            prep.warm_from_snapshot(cloned, oracle, key, pin=program)
            assert structure_state(cloned) == structure_state(direct)
            assert cloned.stats.as_dict() == {}

    def test_snapshot_clone_is_isolated(self):
        """Training one clone must not leak into the donor or siblings."""
        clear_prep_caches()
        program, execution, key = prep.get_oracle("gzip", 2000)
        config = frontend_config("pf-2x8w")
        first = Processor(config, program, execution.stream,
                          watchdog=None, invariants=None)
        prep.warm_from_snapshot(first, execution.stream, key, pin=program)
        before = structure_state(first)
        first.run()  # mutates predictors through the commit carver
        second = Processor(config, program, execution.stream,
                           watchdog=None, invariants=None)
        prep.warm_from_snapshot(second, execution.stream, key, pin=program)
        assert structure_state(second) == before


class TestPrepCache:
    def test_suite_oracle_is_shared_in_process(self):
        p1, r1, k1 = prep.get_oracle("gzip", 2000)
        p2, r2, k2 = prep.get_oracle("gzip", 2000)
        assert p1 is p2 and r1 is r2 and k1 == k2

    def test_adhoc_program_is_memoized(self):
        program = suite.get_benchmark("mcf")
        p1, r1, k1 = prep.get_oracle(program, 1500)
        p2, r2, k2 = prep.get_oracle(program, 1500)
        assert p1 is program and r1 is r2 and k1 == k2

    def test_disk_bundle_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(prep.CACHE_DIR_ENV, str(tmp_path))
        clear_prep_caches()
        suite.clear_caches()
        _, first, _ = prep.get_oracle("gzip", 2000)
        files = list((tmp_path / "streams").glob("gzip-*.pkl"))
        assert len(files) == 1

        # A fresh process state (caches cleared) must load the bundle
        # instead of re-emulating, preserving intra-stream identity.
        clear_prep_caches()
        suite.clear_caches()
        program, result, _ = prep.get_oracle("gzip", 2000)
        assert suite.cached_program("gzip") is program
        assert [r.pc for r in result.stream] == [r.pc for r in first.stream]
        by_pc = {}
        for record in result.stream:
            if record.pc in by_pc:
                assert record.inst is by_pc[record.pc]
            else:
                by_pc[record.pc] = record.inst

        clear_prep_caches()
        suite.clear_caches()

    def test_no_cache_env_disables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(prep.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(prep.NO_CACHE_ENV, "1")
        clear_prep_caches()
        suite.clear_caches()
        prep.get_oracle("gzip", 1500)
        assert not (tmp_path / "streams").exists()
        clear_prep_caches()
        suite.clear_caches()

    def test_corrupt_stream_bundle_is_quarantined(self, tmp_path,
                                                  monkeypatch):
        """A torn/garbage pickle is moved aside as *.pkl.corrupt (never
        silently unlinked), counted, and transparently re-emulated."""
        monkeypatch.setenv(prep.CACHE_DIR_ENV, str(tmp_path))
        clear_prep_caches()
        suite.clear_caches()
        _, clean, _ = prep.get_oracle("gzip", 2000)
        bundle = list((tmp_path / "streams").glob("gzip-*.pkl"))[0]
        bundle.write_bytes(b"\x80\x04 not a pickle")

        clear_prep_caches()
        suite.clear_caches()
        before = prep.PREP_STATS.get("prep.stream_corrupt")
        _, recovered, _ = prep.get_oracle("gzip", 2000)
        assert prep.PREP_STATS.get("prep.stream_corrupt") == before + 1
        corpse = bundle.with_name(bundle.name + ".corrupt")
        assert corpse.exists()  # evidence kept for postmortems
        assert corpse.read_bytes() == b"\x80\x04 not a pickle"
        # Recovery re-emulated the identical stream and re-stored it.
        assert [r.pc for r in recovered.stream] == \
            [r.pc for r in clean.stream]
        assert bundle.exists()

        # The quarantined corpse never shadows the healthy rewrite.
        clear_prep_caches()
        suite.clear_caches()
        marker = prep.PREP_STATS.get("prep.stream_corrupt")
        prep.get_oracle("gzip", 2000)
        assert prep.PREP_STATS.get("prep.stream_corrupt") == marker
        clear_prep_caches()
        suite.clear_caches()

    def test_wrong_typed_bundle_is_quarantined(self, tmp_path,
                                               monkeypatch):
        """A well-formed pickle of the wrong shape is corrupt too."""
        import pickle

        monkeypatch.setenv(prep.CACHE_DIR_ENV, str(tmp_path))
        clear_prep_caches()
        suite.clear_caches()
        prep.get_oracle("mcf", 1500)
        bundle = list((tmp_path / "streams").glob("mcf-*.pkl"))[0]
        bundle.write_bytes(pickle.dumps(("just", "strings")))

        clear_prep_caches()
        suite.clear_caches()
        before = prep.PREP_STATS.get("prep.stream_corrupt")
        prep.get_oracle("mcf", 1500)
        assert prep.PREP_STATS.get("prep.stream_corrupt") == before + 1
        assert bundle.with_name(bundle.name + ".corrupt").exists()
        clear_prep_caches()
        suite.clear_caches()


class TestCheckpointSeam:
    def test_run_until_stops_at_commit_bound(self):
        processor, _ = make_processor("w16", "gzip", 2000)
        warm_processor(processor, processor._oracle)
        assert processor.run_until(500)
        assert processor.committed == 500
        assert processor.run_until(1200)
        assert processor.committed == 1200

    def test_restart_at_rewinds_commit_index(self):
        processor, _ = make_processor("w16", "gzip", 2000)
        warm_processor(processor, processor._oracle)
        processor.run_until(600)
        processor.restart_at(200)
        assert processor.committed == 200
        assert processor.run_until(400)
        assert processor.committed == 400

    def test_restart_at_rejects_out_of_range(self):
        processor, _ = make_processor("w16", "gzip", 2000)
        with pytest.raises(SimulationError):
            processor.restart_at(len(processor._oracle))


class TestSamplingConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            SamplingConfig(period=0)
        with pytest.raises(ReproError):
            SamplingConfig(unit=0)
        with pytest.raises(ReproError):
            SamplingConfig(warmup=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "8")
        monkeypatch.setenv(sampling_engine.UNIT_ENV, "500")
        monkeypatch.setenv(sampling_engine.WARMUP_ENV, "250")
        config = SamplingConfig.from_env()
        assert (config.period, config.unit, config.warmup) == (8, 500, 250)
        assert SamplingConfig.from_env(period=4).period == 4

    def test_resolve_sampling(self, monkeypatch):
        monkeypatch.delenv(sampling_engine.SAMPLE_ENV, raising=False)
        assert resolve_sampling(None) is None
        assert resolve_sampling(False) is None
        assert resolve_sampling(0) is None
        assert resolve_sampling(True) == SamplingConfig()
        assert resolve_sampling(4).period == 4
        explicit = SamplingConfig(period=2)
        assert resolve_sampling(explicit) is explicit
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "8")
        assert resolve_sampling(None).period == 8
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "0")
        assert resolve_sampling(None) is None

    def test_falsy_env_values_fall_back(self, monkeypatch):
        """Regression: ``REPRO_SAMPLE=0`` is the documented "off"
        spelling, but the string ``"0"`` is truthy, so the old
        ``int(env or default)`` parsed it to a literal 0 and an
        explicit ``sampling=True`` run then *crashed* in config
        validation instead of using the default period."""
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "0")
        monkeypatch.setenv(sampling_engine.UNIT_ENV, "0")
        config = SamplingConfig.from_env()  # the REPRO_SAMPLE=0 crash
        assert config.period == sampling_engine.DEFAULT_PERIOD
        assert config.unit == sampling_engine.DEFAULT_UNIT
        assert resolve_sampling(True).period == sampling_engine.DEFAULT_PERIOD
        # Blank and whitespace-only values defer like unset ones.
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "  ")
        assert resolve_sampling(None) is None
        assert SamplingConfig.from_env().period \
            == sampling_engine.DEFAULT_PERIOD
        # warmup=0 is a *valid* value, not a falsy fallback case.
        monkeypatch.setenv(sampling_engine.WARMUP_ENV, "0")
        assert SamplingConfig.from_env().warmup == 0


class TestRunSampled:
    def test_counter_contract(self):
        result = run_simulation("tc", "gzip", max_instructions=8000,
                                sampling=SamplingConfig(period=4))
        counters = result.counters
        assert counters["sampling.enabled"] == 1.0
        assert counters["sampling.units_measured"] + \
            counters["sampling.units_skipped"] == \
            counters["sampling.units_total"]
        assert counters["sampling.measured_insts"] <= result.committed
        assert result.cycles > 0 and result.ipc > 0
        assert counters["sampling.ipc_halfwidth_rel"] >= 0.0

    def test_sampling_off_is_bit_identical_to_default(self):
        default = run_simulation("w16", "gzip", max_instructions=4000)
        explicit = run_simulation("w16", "gzip", max_instructions=4000,
                                  sampling=False)
        assert explicit.cycles == default.cycles
        assert explicit.counters == default.counters
        assert "sampling.enabled" not in default.counters

    def test_env_knob_activates_sampling(self, monkeypatch):
        monkeypatch.setenv(sampling_engine.SAMPLE_ENV, "4")
        result = run_simulation("w16", "gzip", max_instructions=6000)
        assert result.counter("sampling.enabled") == 1.0
        assert result.counter("sampling.period") == 4.0

    def test_deterministic_across_processes(self, tmp_path):
        """Two fresh interpreters must produce identical sampled results
        (one exercises the cold disk-cache path, one the warm path)."""
        script = (
            "import json, sys\n"
            "from repro import run_simulation\n"
            "from repro.sampling import SamplingConfig\n"
            "r = run_simulation('tc', 'gzip', max_instructions=6000,\n"
            "                   sampling=SamplingConfig(period=4))\n"
            "print(json.dumps({'cycles': r.cycles,\n"
            "                  'counters': r.counters}, sort_keys=True))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env[prep.CACHE_DIR_ENV] = str(tmp_path)
        outputs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True,
                                  env=env, timeout=300)
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]


class TestSweepSampling:
    def test_cache_key_unchanged_without_sampling(self):
        job = SweepJob("w16", "gzip", 2000)
        assert "sampling" not in job.cache_key()

    def test_cache_key_distinguishes_sampled_jobs(self):
        full = SweepJob("w16", "gzip", 2000)
        sampled = SweepJob("w16", "gzip", 2000, sampling=(4, 500, 250))
        assert full.cache_key() != sampled.cache_key()
        assert "sampled=4x500+250" in sampled.describe()

    def test_run_job_sampled(self):
        job = SweepJob("w16", "gzip", 6000, sampling=(4, 1000, 500))
        result = run_job(job)
        assert result.counter("sampling.enabled") == 1.0
        assert result.counter("sampling.period") == 4.0


class TestSampledAccuracy:
    """The acceptance harness: pinned matrix, 8x default length, <=3%."""

    _pairs = {}

    @classmethod
    def _pair(cls, config_name):
        if config_name not in cls._pairs:
            program, execution, key = prep.get_oracle(
                ACCURACY_BENCHMARK, ACCURACY_INSTRUCTIONS)
            oracle = execution.stream
            config = frontend_config(config_name)
            full = Processor(config, program, oracle,
                             watchdog=None, invariants=None)
            prep.warm_from_snapshot(full, oracle, key, pin=program)
            full.run()
            sampled = run_sampled(config, program, oracle,
                                  SamplingConfig(), config_name=config_name,
                                  benchmark=ACCURACY_BENCHMARK,
                                  warm=True, stream_key=key, pin=program)
            cls._pairs[config_name] = (full.committed / full.now, sampled)
        return cls._pairs[config_name]

    @pytest.mark.parametrize("config_name", PINNED_MATRIX)
    def test_ipc_within_bound(self, config_name):
        full_ipc, sampled = self._pair(config_name)
        error = abs(sampled.ipc - full_ipc) / full_ipc
        assert error <= ACCURACY_BOUND, (
            f"{config_name}: sampled IPC {sampled.ipc:.4f} vs full "
            f"{full_ipc:.4f} — relative error {error:.2%} exceeds "
            f"{ACCURACY_BOUND:.0%}")

    @pytest.mark.parametrize("config_name", PINNED_MATRIX)
    def test_enough_measured_units(self, config_name):
        _, sampled = self._pair(config_name)
        assert sampled.counter("sampling.units_measured") >= 10
        assert sampled.counter("sampling.window_timeouts") == 0
