"""Boolean env knobs must all parse falsy strings the same way.

Historically each knob hand-rolled its own parse, and several used plain
truthiness — so ``REPRO_OBS_TRACE=0`` *enabled* tracing (to a file named
``"0"``) and ``REPRO_NO_CACHE=0`` *disabled* the disk cache.  Every
boolean knob now goes through :func:`repro.config.env_flag` and is
registered in :data:`repro.config.FLAG_ENV_KNOBS`; this module probes
each registered knob with every falsy spelling and asserts it actually
reads as disabled — and that the registry itself cannot silently drift
from the probe table.
"""

import pytest

from repro.config import (
    FALSY_ENV_VALUES,
    FLAG_ENV_KNOBS,
    LiveConfig,
    ObservabilityConfig,
    env_flag,
)


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLAG_UNDER_TEST", raising=False)
        assert env_flag("REPRO_FLAG_UNDER_TEST") is False
        assert env_flag("REPRO_FLAG_UNDER_TEST", default=True) is True

    def test_empty_and_whitespace_return_default(self, monkeypatch):
        for raw in ("", "   "):
            monkeypatch.setenv("REPRO_FLAG_UNDER_TEST", raw)
            assert env_flag("REPRO_FLAG_UNDER_TEST") is False
            assert env_flag("REPRO_FLAG_UNDER_TEST", default=True) is True

    @pytest.mark.parametrize("raw", FALSY_ENV_VALUES)
    def test_falsy_spellings_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FLAG_UNDER_TEST", raw)
        assert env_flag("REPRO_FLAG_UNDER_TEST") is False
        assert env_flag("REPRO_FLAG_UNDER_TEST", default=True) is False

    @pytest.mark.parametrize("raw", ("1", "true", "yes", "on", "ON",
                                     "  False  ", "FALSE", "No", "oFF"))
    def test_case_and_whitespace_insensitive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FLAG_UNDER_TEST", raw)
        expected = raw.strip().lower() not in FALSY_ENV_VALUES
        assert env_flag("REPRO_FLAG_UNDER_TEST") is expected

    def test_arbitrary_value_enables(self, monkeypatch):
        # Knobs like REPRO_OBS_TRACE=path.json use the value as payload.
        monkeypatch.setenv("REPRO_FLAG_UNDER_TEST", "trace.json")
        assert env_flag("REPRO_FLAG_UNDER_TEST") is True


# One probe per registered knob: returns True iff the knob currently
# reads as *enabled*.  Imports live inside the probes so this table can
# cover knobs from every layer without import-order games.

def _probe_sweep_group() -> bool:
    from repro.experiments.runner import default_group_streams
    return default_group_streams()


def _probe_cosim() -> bool:
    from repro.experiments.runner import default_cosim
    return default_cosim()


def _probe_no_cache() -> bool:
    # Inverted knob: REPRO_NO_CACHE enabled means caching is OFF.
    from repro.experiments.runner import ResultCache
    from repro.sampling.prep import _disk_enabled
    runner_side = not ResultCache(enabled=None).enabled
    prep_side = not _disk_enabled()
    assert runner_side == prep_side, \
        "runner and prep disagree on REPRO_NO_CACHE"
    return runner_side


def _probe_checkpoint() -> bool:
    from repro.checkpoint import resolve_checkpoint_every
    return resolve_checkpoint_every(None) is not None


def _probe_invariants() -> bool:
    from repro.core.invariants import InvariantChecker
    return InvariantChecker.from_env() is not None


def _probe_obs_trace() -> bool:
    config = ObservabilityConfig.from_env()
    assert config.trace_path != "0", \
        "falsy REPRO_OBS_TRACE must not become a trace file name"
    return config.trace


def _probe_obs_profile() -> bool:
    return ObservabilityConfig.from_env().profile


def _probe_live() -> bool:
    return LiveConfig.from_env() is not None


PROBES = {
    "REPRO_SWEEP_GROUP": _probe_sweep_group,
    "REPRO_COSIM": _probe_cosim,
    "REPRO_NO_CACHE": _probe_no_cache,
    "REPRO_CHECKPOINT": _probe_checkpoint,
    "REPRO_INVARIANT_CHECKS": _probe_invariants,
    "REPRO_OBS_TRACE": _probe_obs_trace,
    "REPRO_OBS_PROFILE": _probe_obs_profile,
    "REPRO_LIVE": _probe_live,
}


class TestRegisteredKnobs:
    def test_registry_matches_probe_table(self):
        """A knob added to FLAG_ENV_KNOBS must get a probe here."""
        assert set(PROBES) == set(FLAG_ENV_KNOBS)

    @pytest.mark.parametrize("knob", FLAG_ENV_KNOBS)
    @pytest.mark.parametrize("raw", ("0", "false"))
    def test_falsy_value_disables_knob(self, monkeypatch, knob, raw):
        monkeypatch.setenv(knob, raw)
        assert PROBES[knob]() is False, \
            f"{knob}={raw!r} must read as disabled"

    @pytest.mark.parametrize("knob", FLAG_ENV_KNOBS)
    def test_truthy_value_enables_knob(self, monkeypatch, knob):
        monkeypatch.setenv(knob, "1")
        assert PROBES[knob]() is True, f"{knob}=1 must read as enabled"
