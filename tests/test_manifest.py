"""Tests for durable sweep manifests (``repro.experiments.manifest``)."""

import json

import pytest

from repro.experiments import manifest as manifests
from repro.experiments.runner import CACHE_DIR_ENV, SweepJob
from repro.experiments.manifest import (
    ManifestError,
    latest_manifest,
    list_manifests,
    load_manifest,
    mark_complete,
    sweep_id_for,
    write_manifest,
)

LENGTH = 400


@pytest.fixture(autouse=True)
def manifest_tmpdir(monkeypatch, tmp_path):
    """Point the default manifest dir at a per-test scratch cache."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))


def make_jobs():
    return [SweepJob("w16", "gzip", LENGTH, checkpoint=200),
            SweepJob("tc", "mcf", LENGTH, sampling=(4, 100, 100))]


class TestSweepId:
    def test_content_addressed_and_order_independent(self):
        jobs = make_jobs()
        assert sweep_id_for(jobs) == sweep_id_for(list(reversed(jobs)))

    def test_different_matrices_differ(self):
        assert sweep_id_for(make_jobs()) != sweep_id_for(
            [SweepJob("w16", "gzip", LENGTH)])

    def test_cadence_changes_identity(self):
        assert sweep_id_for([SweepJob("w16", "gzip", LENGTH)]) \
            != sweep_id_for([SweepJob("w16", "gzip", LENGTH,
                                      checkpoint=200)])


class TestRoundTrip:
    def test_write_load_preserves_jobs(self):
        jobs = make_jobs()
        written = write_manifest(jobs, options={"workers": 2})
        loaded = load_manifest(written.sweep_id)
        assert loaded.jobs == jobs
        assert loaded.options == {"workers": 2}
        assert not loaded.completed
        assert loaded.created == pytest.approx(written.created)

    def test_mark_complete_round_trips(self):
        written = write_manifest(make_jobs())
        mark_complete(written)
        assert load_manifest(written.sweep_id).completed

    def test_missing_manifest_raises(self):
        with pytest.raises(ManifestError):
            load_manifest("nope")

    def test_rewrite_same_matrix_reuses_id(self):
        first = write_manifest(make_jobs())
        second = write_manifest(make_jobs())
        assert first.sweep_id == second.sweep_id
        assert len(list_manifests()) == 1


class TestLatest:
    def test_latest_skips_completed(self, monkeypatch):
        done = write_manifest([SweepJob("w16", "gzip", LENGTH)])
        mark_complete(done)
        live = write_manifest(make_jobs())
        # Force distinct created stamps regardless of clock resolution.
        live.created = done.created + 60.0
        manifests._write(live)
        picked = latest_manifest()
        assert picked is not None and picked.sweep_id == live.sweep_id

    def test_no_incomplete_manifest_means_none(self):
        mark_complete(write_manifest(make_jobs()))
        assert latest_manifest() is None


class TestCorruption:
    def test_torn_manifest_quarantined(self):
        written = write_manifest(make_jobs())
        path = written.path()
        path.write_text(path.read_text()[:25])
        with pytest.raises(ManifestError):
            load_manifest(written.sweep_id)
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()

    def test_wrong_schema_is_corrupt(self):
        written = write_manifest(make_jobs())
        path = written.path()
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError):
            load_manifest(written.sweep_id)

    def test_list_skips_corrupt_entries(self):
        keep = write_manifest(make_jobs())
        broken = write_manifest([SweepJob("w16", "mcf", LENGTH)])
        broken.path().write_text("{")
        listed = list_manifests()
        assert [m.sweep_id for m in listed] == [keep.sweep_id]
