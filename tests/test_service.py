"""Tests for the sweep job server: wire protocol, HTTP endpoints,
cache-backed result serving, and a miniature load-generator run."""

import asyncio
import json

import pytest

from repro import faults
from repro.experiments.runner import (
    ResultCache,
    SweepJob,
    _result_to_payload,
    run_sweep,
)
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError, result_from_wire
from repro.service.loadgen import run_loadgen
from repro.service.protocol import (
    ProtocolError,
    job_from_wire,
    job_to_wire,
    jobs_from_wire,
)
from repro.service.server import ServiceConfig, SweepService

LENGTH = 400


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Keep every test hermetic against an inherited REPRO_FAULTS."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)


class TestProtocol:
    def test_round_trip_minimal(self):
        job = SweepJob("w16", "gzip", LENGTH)
        assert job_from_wire(job_to_wire(job)) == job

    def test_round_trip_every_field(self):
        job = SweepJob("pf-2x8w", "mcf", LENGTH, total_l1_storage=8192,
                       predictor_entries=4096,
                       overrides=(("fragment.max_length", 32),
                                  ("frontend.num_fragment_buffers", 8)),
                       warm=False, label="alias",
                       sampling=(5000, 1000, 300))
        decoded = job_from_wire(job_to_wire(job))
        assert decoded == job
        assert decoded.cache_key() == job.cache_key()

    def test_wire_form_is_json_safe(self):
        job = SweepJob("w16", "gzip", LENGTH, sampling=(5000, 1000, 300))
        assert job_from_wire(json.loads(json.dumps(job_to_wire(job)))) == job

    def test_single_object_submission_becomes_list(self):
        jobs = jobs_from_wire(job_to_wire(SweepJob("w16", "gzip", LENGTH)))
        assert len(jobs) == 1

    @pytest.mark.parametrize("payload", [
        None,
        [],
        "w16",
        {"benchmark": "gzip", "length": LENGTH},              # no config
        {"config_name": "w16", "benchmark": "gzip"},          # no length
        {"config_name": "w16", "benchmark": "gzip", "length": 0},
        {"config_name": "w16", "benchmark": "gzip", "length": True},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "bogus": 1},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "overrides": [["only-a-path"]]},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "overrides": [["path", {"nested": 1}]]},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "sampling": [5000, 1000]},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "sampling": [5000, 1000, "warm"]},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "warm": "yes"},
        {"config_name": "w16", "benchmark": "gzip", "length": LENGTH,
         "label": 7},
    ])
    def test_malformed_jobs_rejected(self, payload):
        with pytest.raises(ProtocolError):
            jobs_from_wire(payload)


def with_service(tmp_path, scenario, **config_kwargs):
    """Run *scenario(service, client)* against a live server on an
    ephemeral port, then shut it down cleanly."""
    config_kwargs.setdefault("sweep_workers", 1)
    config_kwargs.setdefault("cache_dir", str(tmp_path / "svc_cache"))

    async def main():
        service = SweepService(ServiceConfig(port=0, **config_kwargs))
        await service.start()
        client = ServiceClient(port=service.port, timeout=120.0)
        try:
            return await scenario(service, client)
        finally:
            service.request_shutdown()
            await service.serve_forever()

    return asyncio.run(main())


class TestServer:
    def test_health(self, tmp_path):
        async def scenario(service, client):
            return await client.health()

        health = with_service(tmp_path, scenario)
        assert health["ok"] is True
        assert health["protocol"] == protocol.PROTOCOL_VERSION

    def test_submit_matches_direct_run(self, tmp_path):
        jobs = [SweepJob("w16", "gzip", LENGTH),
                SweepJob("tc", "mcf", LENGTH)]

        async def scenario(service, client):
            record = await client.submit(jobs, workers=1)
            assert record["state"] in (protocol.QUEUED, protocol.RUNNING,
                                       protocol.DONE)
            final = await client.wait(record["id"], deadline=300)
            return final

        final = with_service(tmp_path, scenario)
        assert final["state"] == protocol.DONE
        assert final["failures"] == []
        assert final["completed"] == len(jobs)
        direct = run_sweep(jobs, workers=1, cache=ResultCache(enabled=False))
        for job, payload in zip(jobs, final["results"]):
            expected = _result_to_payload(direct.results[job])
            assert json.loads(json.dumps(payload)) == json.loads(
                json.dumps(expected))

    def test_duplicate_submit_served_from_cache(self, tmp_path):
        jobs = [SweepJob("w16", "gzip", LENGTH)]

        async def scenario(service, client):
            first = await client.submit(jobs, workers=1)
            await client.wait(first["id"], deadline=300)
            second = await client.submit(jobs, workers=1)
            return await client.wait(second["id"], deadline=300)

        final = with_service(tmp_path, scenario)
        assert final["state"] == protocol.DONE
        assert final["cached"] == len(jobs)
        assert final["completed"] == 0  # nothing re-executed

    def test_result_fetch_hit_and_miss(self, tmp_path):
        job = SweepJob("w16", "gzip", LENGTH)

        async def scenario(service, client):
            record = await client.submit([job], workers=1)
            await client.wait(record["id"], deadline=300)
            hit = await client.result_for(job)
            miss = await client.result_for_key("f" * 64)
            return hit, miss

        hit, miss = with_service(tmp_path, scenario)
        assert miss is None
        direct = run_sweep([job], workers=1,
                           cache=ResultCache(enabled=False))
        assert json.loads(json.dumps(_result_to_payload(hit))) == \
            json.loads(json.dumps(_result_to_payload(direct.results[job])))

    def test_result_survives_memo_flush(self, tmp_path):
        """The disk cache, not the memo, is the system of record."""
        job = SweepJob("tc", "gzip", LENGTH)

        async def scenario(service, client):
            record = await client.submit([job], workers=1)
            await client.wait(record["id"], deadline=300)
            service._result_payloads.clear()
            service._memo.clear()
            return await client.result_for(job)

        assert with_service(tmp_path, scenario) is not None

    def test_events_stream_replays_to_done(self, tmp_path):
        jobs = [SweepJob("w16", "gzip", LENGTH)]

        async def scenario(service, client):
            record = await client.submit(jobs, workers=1)
            await client.wait(record["id"], deadline=300)
            return [event async for event in client.events(record["id"])]

        events = with_service(tmp_path, scenario)
        assert events[-1]["type"] == "done"
        assert events[-1]["failures"] == 0
        assert any(event["type"] == "progress" for event in events)

    def test_error_paths(self, tmp_path):
        async def scenario(service, client):
            statuses = {}
            response = await client._request("POST", "/jobs", None)
            statuses["empty_submit"] = response.status
            response = await client._request(
                "POST", "/jobs", {"jobs": [{"config_name": "w16"}]})
            statuses["malformed_job"] = response.status
            response = await client._request("GET", "/jobs/no-such-id")
            statuses["unknown_id"] = response.status
            response = await client._request("GET", "/results/nothex")
            statuses["bad_key"] = response.status
            response = await client._request("GET", "/nowhere")
            statuses["unknown_route"] = response.status
            response = await client._request("DELETE", "/jobs")
            statuses["bad_method"] = response.status
            return statuses, await client.stats()

        statuses, stats = with_service(tmp_path, scenario)
        assert statuses == {"empty_submit": 400, "malformed_job": 400,
                            "unknown_id": 404, "bad_key": 400,
                            "unknown_route": 404, "bad_method": 405}
        assert stats["service"].get("service.http_5xx", 0) == 0
        assert stats["service"]["service.bad_requests"] >= 3

    def test_submit_options_validated(self, tmp_path):
        job_payload = job_to_wire(SweepJob("w16", "gzip", LENGTH))

        async def scenario(service, client):
            response = await client._request(
                "POST", "/jobs", {"jobs": [job_payload], "workers": "four"})
            return response.status

        assert with_service(tmp_path, scenario) == 400

    def test_stats_endpoint_shape(self, tmp_path):
        job = SweepJob("w16", "gzip", LENGTH)

        async def scenario(service, client):
            record = await client.submit([job], workers=1)
            await client.wait(record["id"], deadline=300)
            await client.result_for(job)
            return await client.stats()

        stats = with_service(tmp_path, scenario)
        assert {"service", "sweep", "cache", "records", "active"} <= set(stats)
        assert stats["cache"]["entries"] >= 1
        assert stats["cache"]["bytes"] > 0
        assert stats["service"]["service.requests"] >= 3

    def test_long_poll_returns_on_completion(self, tmp_path):
        jobs = [SweepJob("w16", "gzip", LENGTH)]

        async def scenario(service, client):
            record = await client.submit(jobs, workers=1)
            snapshot = await client.status(record["id"], wait=60.0)
            return snapshot

        snapshot = with_service(tmp_path, scenario)
        assert snapshot["state"] in protocol.TERMINAL_STATES

    def test_faulty_sweep_reports_structured_failure(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            "worker_exception match=gzip attempts=*")
        jobs = [SweepJob("w16", "gzip", LENGTH),
                SweepJob("w16", "mcf", LENGTH)]

        async def scenario(service, client):
            record = await client.submit(jobs, workers=1, retries=1)
            return await client.wait(record["id"], deadline=300)

        final = with_service(tmp_path, scenario)
        # The sweep finishes (DONE) with one structured failure; the
        # server never turns a job failure into a 5xx.
        assert final["state"] == protocol.DONE
        assert len(final["failures"]) == 1
        assert "gzip" in final["failures"][0]["job"]
        assert final["results"][1] is not None  # mcf still served

    def test_result_from_wire_round_trip(self, tmp_path):
        job = SweepJob("w16", "gzip", LENGTH)

        async def scenario(service, client):
            record = await client.submit([job], workers=1)
            final = await client.wait(record["id"], deadline=300)
            return final["results"][0]

        payload = with_service(tmp_path, scenario)
        result = result_from_wire(payload)
        assert result.benchmark == "gzip"
        assert result.cycles > 0
        assert result.ipc > 0


class TestLoadgen:
    def test_mini_load_run_is_clean(self, tmp_path):
        """A scaled-down acceptance run: mixed concurrent requests, no
        5xx, bit-identical serial verification, budget honoured."""
        cache_dir = str(tmp_path / "svc_cache")

        async def scenario(service, client):
            return await run_loadgen(
                port=service.port, requests=40, concurrency=12,
                configs=("w16", "tc"), benchmarks=("gzip",),
                length=LENGTH, workers=1, cache_dir=cache_dir)

        report = with_service(tmp_path, scenario, cache_dir=cache_dir,
                              cache_budget=64 * 1024 * 1024)
        assert report.ok, report.format_text()
        assert report.requests == 40
        assert report.verified_jobs == 2
        assert report.cache_bytes is not None

    def test_loadgen_flags_injected_faults_without_5xx(self, tmp_path,
                                                       monkeypatch):
        """Under an aggressive fault plan the server still never 5xxs;
        the seed failures surface as structured report entries."""
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            "worker_exception match=gzip attempts=*")
        cache_dir = str(tmp_path / "svc_cache")

        async def scenario(service, client):
            return await run_loadgen(
                port=service.port, requests=20, concurrency=8,
                configs=("w16",), benchmarks=("gzip", "mcf"),
                length=LENGTH, workers=1, verify=False,
                cache_dir=cache_dir)

        report = with_service(tmp_path, scenario, cache_dir=cache_dir)
        assert report.server_errors == 0
        assert report.seed_failures == 1


class TestServiceClientErrors:
    def test_unreachable_server_is_transport_error(self):
        client = ServiceClient(port=1, timeout=2.0)

        async def go():
            await client.health()

        with pytest.raises(ServiceError) as excinfo:
            asyncio.run(go())
        assert excinfo.value.status is None


class TestDurability:
    """Journal-backed recovery: the registry survives server restarts."""

    @staticmethod
    def _config_kwargs(tmp_path):
        return {"sweep_workers": 1,
                "cache_dir": str(tmp_path / "svc_cache")}

    def _restarted_pair(self, tmp_path, first, second, **extra):
        """Run *first* against one server, then *second* against a new
        server over the same cache dir (a simulated restart)."""
        kwargs = dict(self._config_kwargs(tmp_path), **extra)

        async def main():
            service = SweepService(ServiceConfig(port=0, **kwargs))
            await service.start()
            client = ServiceClient(port=service.port, timeout=120.0)
            try:
                carried = await first(service, client)
            finally:
                service.request_shutdown()
                await service.serve_forever()
            reborn = SweepService(ServiceConfig(port=0, **kwargs))
            await reborn.start()
            client = ServiceClient(port=reborn.port, timeout=120.0)
            try:
                return await second(reborn, client, carried)
            finally:
                reborn.request_shutdown()
                await reborn.serve_forever()

        return asyncio.run(main())

    def test_finished_submission_survives_restart(self, tmp_path):
        jobs = [SweepJob("w16", "gzip", LENGTH)]

        async def first(service, client):
            record = await client.submit(jobs, workers=1)
            final = await client.wait(record["id"], deadline=300)
            return record["id"], final

        async def second(service, client, carried):
            record_id, final = carried
            assert service.stats.get("service.recovered_records") >= 1
            snapshot = await client.status(record_id, results=True)
            return final, snapshot

        final, snapshot = self._restarted_pair(tmp_path, first, second)
        assert snapshot["state"] == protocol.DONE
        assert snapshot["keys"] == final["keys"]
        # Results re-hydrate from the disk cache by key, bit-identical.
        assert json.loads(json.dumps(snapshot["results"])) \
            == json.loads(json.dumps(final["results"]))

    def test_interrupted_submission_requeued_on_restart(self, tmp_path):
        """A submission the old server never finished (journal shows
        submit+running, as after a ``kill -9``) runs again under its
        original id on the next server."""
        import time as _time
        from pathlib import Path

        from repro.service.server import _Journal

        jobs = [SweepJob("w16", "gzip", LENGTH)]
        cache_dir = Path(tmp_path / "svc_cache")
        journal = _Journal(cache_dir / "service" / "journal.ndjson")
        journal.open()
        journal.append({"event": "submit", "id": "000007-abcdef",
                        "t": _time.time(),
                        "jobs": [job_to_wire(job) for job in jobs],
                        "workers": 1, "retries": None, "timeout": None,
                        "tag": "orphan"})
        journal.append({"event": "running", "id": "000007-abcdef",
                        "t": _time.time()})
        journal.close()

        async def scenario(service, client):
            assert service.stats.get("service.requeued") == 1
            final = await client.wait("000007-abcdef", deadline=300)
            return final, service.stats.get("service.recovered_records")

        final, recovered = with_service(
            tmp_path, scenario, cache_dir=str(cache_dir))
        assert final["state"] == protocol.DONE
        assert final["failures"] == []
        assert recovered == 1

    def test_unknown_id_falls_back_to_cache_key(self, tmp_path):
        """GET /jobs/<key> for a forgotten record (no journal) still
        answers from the disk cache."""
        job = SweepJob("w16", "gzip", LENGTH)

        async def first(service, client):
            record = await client.submit([job], workers=1)
            await client.wait(record["id"], deadline=300)
            return record["id"]

        async def second(service, client, old_id):
            # No journal: the record id really is gone...
            with pytest.raises(ServiceError) as excinfo:
                await client.status(old_id)
            assert excinfo.value.status == 404
            # ...but the content-addressed key still resolves.
            return await client.status(job.cache_key(), results=True)

        snapshot = self._restarted_pair(tmp_path, first, second,
                                        journal=False)
        assert snapshot["state"] == protocol.DONE
        assert snapshot["source"] == "cache"
        assert snapshot["results"][0]["counters"]["sim.committed"] > 0

    def test_no_journal_mode_writes_nothing(self, tmp_path):
        from pathlib import Path

        async def scenario(service, client):
            record = await client.submit([SweepJob("w16", "gzip", LENGTH)],
                                         workers=1)
            await client.wait(record["id"], deadline=300)

        with_service(tmp_path, scenario, journal=False)
        assert not (Path(tmp_path / "svc_cache") / "service").exists()

    def test_journal_compacts_on_recovery(self, tmp_path):
        from pathlib import Path

        jobs = [SweepJob("w16", "gzip", LENGTH)]
        path = Path(tmp_path / "svc_cache") / "service" / "journal.ndjson"

        async def first(service, client):
            record = await client.submit(jobs, workers=1)
            await client.wait(record["id"], deadline=300)
            return len(path.read_text().splitlines())

        async def second(service, client, lines_before):
            # submit + running + done, compacted to submit + done.
            return lines_before, len(path.read_text().splitlines())

        before, after = self._restarted_pair(tmp_path, first, second)
        assert before == 3
        assert after == 2

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        import time as _time
        from pathlib import Path

        from repro.service.server import _Journal

        cache_dir = Path(tmp_path / "svc_cache")
        journal = _Journal(cache_dir / "service" / "journal.ndjson")
        journal.open()
        journal.append({"event": "submit", "id": "000003-aaaaaa",
                        "t": _time.time(),
                        "jobs": [job_to_wire(SweepJob("w16", "gzip",
                                                      LENGTH))],
                        "workers": 1, "retries": None, "timeout": None,
                        "tag": None})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"event": "done", "id": "000003-a')  # torn

        async def scenario(service, client):
            final = await client.wait("000003-aaaaaa", deadline=300)
            return final

        final = with_service(tmp_path, scenario, cache_dir=str(cache_dir))
        assert final["state"] == protocol.DONE


class TestProtocolCheckpoint:
    def test_checkpoint_round_trips(self):
        job = SweepJob("w16", "gzip", LENGTH, checkpoint=500)
        decoded = job_from_wire(json.loads(json.dumps(job_to_wire(job))))
        assert decoded == job
        assert decoded.cache_key() == job.cache_key()

    def test_unset_checkpoint_stays_off_the_wire(self):
        assert "checkpoint" not in job_to_wire(SweepJob("w16", "gzip",
                                                        LENGTH))

    @pytest.mark.parametrize("value", [0, -100, True, "soon", 1.5])
    def test_bad_checkpoint_rejected(self, value):
        with pytest.raises(ProtocolError):
            job_from_wire({"config_name": "w16", "benchmark": "gzip",
                           "length": LENGTH, "checkpoint": value})
