"""Tests for counters, means, and table formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    StatsCollector,
    arithmetic_mean,
    format_table,
    geometric_mean,
    harmonic_mean,
    percent_speedup,
    series_table,
    speedup,
)


class TestStatsCollector:
    def test_default_zero(self):
        stats = StatsCollector()
        assert stats.get("nothing") == 0.0
        assert "nothing" not in stats

    def test_add_and_set(self):
        stats = StatsCollector()
        stats.add("a")
        stats.add("a", 2)
        stats.set("b", 10)
        assert stats["a"] == 3
        assert stats["b"] == 10

    def test_ratio_handles_zero_denominator(self):
        stats = StatsCollector()
        stats.add("num", 5)
        assert stats.ratio("num", "denom") == 0.0
        stats.add("denom", 2)
        assert stats.ratio("num", "denom") == 2.5

    def test_reset_leaves_no_phantom_entries(self):
        stats = StatsCollector()
        stats.add("fetch.insts", 10)
        stats.set("l1i.fills", 3)
        stats.reset()
        assert "fetch.insts" not in stats
        assert stats.as_dict() == {}
        assert stats.with_prefix("l1i") == {}
        assert stats.get("fetch.insts") == 0.0

    def test_clear_is_reset(self):
        stats = StatsCollector()
        stats.add("a")
        stats.clear()
        assert "a" not in stats

    def test_with_prefix(self):
        stats = StatsCollector()
        stats.add("fetch.insts", 10)
        stats.add("fetch.slots", 20)
        stats.add("rename.insts", 5)
        assert set(stats.with_prefix("fetch")) == {"fetch.insts",
                                                   "fetch.slots"}

    def test_merge(self):
        a, b = StatsCollector(), StatsCollector()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_merge_overwrites_gauges(self):
        # Regression: gauges written with set() used to sum on merge,
        # so e.g. sweep.workers accumulated across sweeps.
        a, b = StatsCollector(), StatsCollector()
        a.set("sweep.workers", 8)
        a.add("sweep.jobs", 1)
        b.set("sweep.workers", 4)
        b.add("sweep.jobs", 2)
        a.merge(b)
        assert a["sweep.workers"] == 4  # last writer wins
        assert a["sweep.jobs"] == 3     # counters still sum

    def test_merge_gauges_stable_across_repeats(self):
        total = StatsCollector()
        for _ in range(3):
            sweep = StatsCollector()
            sweep.set("sweep.workers", 8)
            sweep.set("sweep.utilization", 0.9)
            total.merge(sweep)
        assert total["sweep.workers"] == 8
        assert total["sweep.utilization"] == 0.9

    def test_merge_takes_max_of_highwater_marks(self):
        a, b, c = StatsCollector(), StatsCollector(), StatsCollector()
        a.maximum("sweep.max_attempts", 3)
        b.maximum("sweep.max_attempts", 2)
        c.maximum("sweep.max_attempts", 5)
        a.merge(b)
        assert a["sweep.max_attempts"] == 3
        a.merge(c)
        assert a["sweep.max_attempts"] == 5

    def test_reset_forgets_gauge_classification(self):
        a = StatsCollector()
        a.set("g", 1)
        a.reset()
        a.add("g", 2)
        b = StatsCollector()
        b.add("g", 3)
        b.merge(a)
        assert b["g"] == 5  # "g" is a plain counter again after reset


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2

    def test_harmonic_known_value(self):
        assert harmonic_mean([1, 2]) == pytest.approx(4 / 3)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1, 0])

    def test_geometric_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2)

    def test_empty_rejected(self):
        for fn in (arithmetic_mean, harmonic_mean, geometric_mean):
            with pytest.raises(ValueError):
                fn([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=2,
                    max_size=20))
    def test_mean_inequality(self, values):
        # HM <= GM <= AM always.
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert percent_speedup(1.1, 1.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["long-name", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        assert "1.500" in text

    def test_series_table(self):
        text = series_table("Figure X", "size", [8, 16],
                            {"tc": [1.0, 2.0], "pr": [3.0, 4.0]})
        assert text.startswith("Figure X")
        assert "tc" in text and "pr" in text and "16" in text


class TestThreadSafeStatsCollector:
    """The cross-thread collector variant the job server, SWEEP_STATS
    and PREP_STATS use (plain StatsCollector stays lock-free for the
    thread-confined per-simulation hot path)."""

    THREADS = 8
    PER_THREAD = 10_000

    def _run_threads(self, target):
        import threading

        workers = [threading.Thread(target=target)
                   for _ in range(self.THREADS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    def test_concurrent_adds_are_exact(self):
        from repro.stats import ThreadSafeStatsCollector

        stats = ThreadSafeStatsCollector()

        def work():
            for _ in range(self.PER_THREAD):
                stats.add("hits")

        self._run_threads(work)
        assert stats.get("hits") == self.THREADS * self.PER_THREAD

    def test_concurrent_merges_are_exact(self):
        from repro.stats import StatsCollector, ThreadSafeStatsCollector

        stats = ThreadSafeStatsCollector()
        delta = StatsCollector()
        delta.add("jobs", 1)

        def work():
            for _ in range(500):
                stats.merge(delta)

        self._run_threads(work)
        assert stats.get("jobs") == self.THREADS * 500

    def test_concurrent_maximum_keeps_high_water_mark(self):
        from repro.stats import ThreadSafeStatsCollector

        stats = ThreadSafeStatsCollector()

        def work():
            for value in range(1000):
                stats.maximum("peak", value)

        self._run_threads(work)
        assert stats.get("peak") == 999

    def test_reads_during_writes_are_consistent(self):
        from repro.stats import ThreadSafeStatsCollector

        stats = ThreadSafeStatsCollector()
        snapshots = []

        def writer():
            for _ in range(2000):
                stats.add("n")

        def reader():
            for _ in range(200):
                view = stats.as_dict()
                snapshots.append(view.get("n", 0.0))
                list(stats.items())
                stats.with_prefix("n")

        import threading

        threads = ([threading.Thread(target=writer) for _ in range(4)]
                   + [threading.Thread(target=reader) for _ in range(4)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.get("n") == 4 * 2000
        # Snapshots taken mid-write must be internally consistent
        # (monotone non-decreasing counts, never out of range).
        assert all(0 <= value <= 8000 for value in snapshots)

    def test_semantics_match_base_collector(self):
        from repro.stats import StatsCollector, ThreadSafeStatsCollector

        plain, safe = StatsCollector(), ThreadSafeStatsCollector()
        for stats in (plain, safe):
            stats.add("a", 2)
            stats.set("gauge", 7)
            stats.maximum("peak", 3)
            stats.maximum("peak", 1)
            other = StatsCollector()
            other.add("a", 1)
            other.set("gauge", 9)
            stats.merge(other)
        assert plain.as_dict() == safe.as_dict()

    def test_reset_and_clear_alias(self):
        from repro.stats import ThreadSafeStatsCollector

        stats = ThreadSafeStatsCollector()
        stats.add("x")
        stats.reset()
        assert "x" not in stats
        stats.add("y")
        stats.clear()
        assert stats.as_dict() == {}


class TestStateRoundTrip:
    """``state()``/``restore_state()`` — the checkpoint serialization
    seam: a restored collector must be indistinguishable, gauge and
    high-water semantics included."""

    def _populated(self, cls):
        stats = cls()
        stats.add("counter", 5)
        stats.set("gauge", 7)
        stats.maximum("peak", 3)
        return stats

    def test_round_trip_preserves_semantics(self):
        from repro.stats import StatsCollector

        donor = self._populated(StatsCollector)
        clone = StatsCollector()
        clone.restore_state(donor.state())
        assert clone.as_dict() == donor.as_dict()
        # Gauge/high-water behaviour survives the round trip.
        clone.set("gauge", 2)
        assert clone.get("gauge") == 2
        clone.maximum("peak", 1)
        assert clone.get("peak") == 3

    def test_state_is_a_snapshot_not_a_view(self):
        from repro.stats import StatsCollector

        donor = self._populated(StatsCollector)
        state = donor.state()
        donor.add("counter", 100)
        clone = StatsCollector()
        clone.restore_state(state)
        assert clone.get("counter") == 5

    def test_thread_safe_round_trip(self):
        from repro.stats import StatsCollector, ThreadSafeStatsCollector

        donor = self._populated(ThreadSafeStatsCollector)
        clone = StatsCollector()
        clone.restore_state(donor.state())
        assert clone.as_dict() == donor.as_dict()

    def test_restore_overwrites_existing_state(self):
        from repro.stats import StatsCollector

        target = StatsCollector()
        target.add("stale", 9)
        target.restore_state(self._populated(StatsCollector).state())
        assert "stale" not in target
        assert target.get("counter") == 5
