"""Tests for sequencers and the three fill engines."""

from repro.config import (
    FragmentConfig,
    MemoryConfig,
    TraceCacheConfig,
)
from repro.frontend.buffers import FragmentInFlight
from repro.frontend.engines import (
    ParallelFillEngine,
    SequentialFillEngine,
    TraceCacheFillEngine,
    _BankGate,
)
from repro.frontend.fragments import walk_fragment
from repro.frontend.sequencer import Sequencer
from repro.frontend.trace_cache import TraceCache
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector

CONFIG = FragmentConfig()


def setup(source):
    program = assemble(source)
    stats = StatsCollector()
    memory = MemoryHierarchy(MemoryConfig(), stats)
    return program, memory, stats


def fragment_at(program, label, seq=0, dirs=()):
    static = walk_fragment(program, program.symbols[label], dirs, CONFIG)
    return FragmentInFlight(seq, static.key, static, (), ())


def warm_lines(memory, fragment):
    for pc in fragment.static_frag.traversed_pcs:
        memory.l1i.fill(pc)
        memory.l2.fill(pc)


ALWAYS = lambda addr: True

STRAIGHT_16 = ("f:\n" + "\n".join(["    add t0, t0, t1"] * 15)
               + "\n    jr t0\n")


class TestSequencer:
    def test_width_limits_per_cycle(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        sequencer = Sequencer(0, 4, program, memory, stats)
        fetched = sequencer.fetch_fragment(fragment, 1, ALWAYS)
        assert fetched == 4
        assert not fragment.complete

    def test_completes_fragment_over_cycles(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        sequencer = Sequencer(0, 8, program, memory, stats)
        now, total = 0, 0
        while not fragment.complete and now < 20:
            now += 1
            total += sequencer.fetch_fragment(fragment, now, ALWAYS)
        assert fragment.complete
        assert total == fragment.static_frag.length

    def test_taken_branch_ends_cycle(self):
        program, memory, stats = setup("""
        f:
            add t0, t0, t1
            j   next
            nop
        next:
            add t0, t0, t1
            jr  t0
        """)
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        sequencer = Sequencer(0, 16, program, memory, stats)
        assert sequencer.fetch_fragment(fragment, 1, ALWAYS) == 2
        assert sequencer.fetch_fragment(fragment, 2, ALWAYS) == 2

    def test_miss_stalls_fragment_then_bypasses(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")  # cold caches: miss
        sequencer = Sequencer(0, 8, program, memory, stats)
        assert sequencer.fetch_fragment(fragment, 1, ALWAYS) == 0
        assert fragment.fetch_stall_until > 1
        assert fragment.fetch_pending_line >= 0
        # After the wait, data is consumed via fill bypass even if the
        # line were evicted.
        memory.l1i.invalidate_all()
        ready = fragment.fetch_stall_until
        assert sequencer.fetch_fragment(fragment, ready, ALWAYS) == 8

    def test_nops_fill_slots_but_dont_count(self):
        program, memory, stats = setup(
            "f:\n    add t0, t0, t1\n    nop\n    nop\n"
            "    add t0, t0, t1\n    jr t0\n")
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        sequencer = Sequencer(0, 16, program, memory, stats)
        fetched = sequencer.fetch_fragment(fragment, 1, ALWAYS)
        assert fetched == 3  # NOPs eliminated
        assert stats.get("fetch.slots") == 16

    def test_bank_blocked_counts_no_slots(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        sequencer = Sequencer(0, 8, program, memory, stats)
        assert sequencer.fetch_fragment(fragment, 1, lambda a: False) == 0
        assert stats.get("fetch.slots") == 0
        assert stats.get("fetch.bank_conflicts") == 1


class TestBankGate:
    def test_same_line_shares_grant(self):
        _, memory, _ = setup("f:\n    jr t0\n")
        gate = _BankGate(memory, max_grants=16)
        gate.reset()
        assert gate(0x1000)
        assert gate(0x1004)          # same line: piggybacks
        assert gate(0x1000 + 64)     # next line, different bank

    def test_same_bank_different_line_conflicts(self):
        _, memory, _ = setup("f:\n    jr t0\n")
        gate = _BankGate(memory, max_grants=16)
        gate.reset()
        banks = memory.num_ibanks
        assert gate(0x1000)
        assert not gate(0x1000 + 64 * banks)  # same bank, other line
        gate.reset()
        assert gate(0x1000 + 64 * banks)

    def test_grant_budget(self):
        _, memory, _ = setup("f:\n    jr t0\n")
        gate = _BankGate(memory, max_grants=1)
        gate.reset()
        assert gate(0x1000)
        assert not gate(0x1040)


class TestParallelEngine:
    def test_redeployment_past_missing_fragment(self):
        """A fragment stalled on a miss must not block younger ones."""
        program, memory, stats = setup(
            STRAIGHT_16 + "g:\n" + "\n".join(["    sub t0, t0, t1"] * 7)
            + "\n    jr t0\n")
        first = fragment_at(program, "f", seq=0)     # cold: will miss
        second = fragment_at(program, "g", seq=1)
        warm_lines(memory, second)
        engine = ParallelFillEngine(program, memory, stats,
                                    sequencers=2, sequencer_width=8)
        engine.accept(first)
        engine.accept(second)
        engine.cycle(1)   # first misses; second fetches
        assert first.fetch_stall_until > 1
        assert second.fetched_count > 0

    def test_squash_drops_pending(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        engine = ParallelFillEngine(program, memory, stats, 2, 8)
        engine.accept(fragment)
        fragment.squashed = True
        engine.squash()
        assert engine.cycle(1) == 0


class TestSequentialEngine:
    def test_blocks_behind_missing_fragment(self):
        """Sequential fetch cannot work past a stall (Section 2.1)."""
        program, memory, stats = setup(
            STRAIGHT_16 + "g:\n    sub t0, t0, t1\n    jr t0\n")
        first = fragment_at(program, "f", seq=0)   # cold: miss
        second = fragment_at(program, "g", seq=1)
        warm_lines(memory, second)
        engine = SequentialFillEngine(program, memory, stats)
        engine.accept(first)
        engine.accept(second)
        for now in range(1, 5):
            engine.cycle(now)
        assert second.fetched_count == 0  # still waiting behind `first`


class TestTraceCacheEngine:
    def test_hit_supplies_whole_fragment_in_one_cycle(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        tc = TraceCache(TraceCacheConfig(), stats)
        tc.insert(fragment.key)
        engine = TraceCacheFillEngine(program, memory, tc, stats)
        engine.accept(fragment)
        fetched = engine.cycle(1)
        assert fragment.complete
        assert fetched == fragment.static_frag.length

    def test_miss_fills_trace_cache(self):
        program, memory, stats = setup(STRAIGHT_16)
        fragment = fragment_at(program, "f")
        warm_lines(memory, fragment)
        tc = TraceCache(TraceCacheConfig(), stats)
        engine = TraceCacheFillEngine(program, memory, tc, stats)
        engine.accept(fragment)
        for now in range(1, 6):
            engine.cycle(now)
        assert fragment.complete
        assert tc.lookup(fragment.key)  # filled after construction
