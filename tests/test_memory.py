"""Tests for the cache model and memory hierarchy, including an LRU
reference-model property test."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, MemoryConfig
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector


def small_cache(size=1024, assoc=2, line=64, banks=1):
    return Cache(CacheConfig(size, assoc, line, 1, banks=banks), "c")


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.get("c.hits") == 1
        assert cache.stats.get("c.misses") == 1

    def test_same_line_shares_tag(self):
        cache = small_cache(line=64)
        cache.fill(0x1000)
        assert cache.lookup(0x1000 + 63)
        assert not cache.lookup(0x1000 + 64)

    def test_probe_has_no_side_effects(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert cache.stats.get("c.misses") == 0

    def test_lru_eviction_within_set(self):
        # 2-way: fill three conflicting lines, oldest is evicted.
        cache = small_cache(size=256, assoc=2, line=64)  # 2 sets
        sets = cache.config.num_sets
        stride = 64 * sets
        a, b, c = 0x0, stride, 2 * stride
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)          # promote a
        victim = cache.fill(c)   # evicts b
        assert victim == cache.line_addr(b)
        assert cache.probe(a) and cache.probe(c) and not cache.probe(b)

    def test_fill_resident_line_is_promotion(self):
        cache = small_cache(size=256, assoc=2, line=64)
        cache.fill(0x0)
        assert cache.fill(0x0) is None

    def test_bank_mapping_interleaves_lines(self):
        cache = small_cache(banks=4)
        banks = {cache.bank_of(0x1000 + i * 64) for i in range(4)}
        assert banks == {0, 1, 2, 3}
        assert cache.bank_of(0x1000) == cache.bank_of(0x1000 + 4 * 64)

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0)      # miss
        cache.fill(0)
        cache.lookup(0)      # hit
        assert cache.miss_rate == 0.5

    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0x1000)
        cache.invalidate_all()
        assert not cache.probe(0x1000)


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_lru_matches_reference_model(line_indices):
    """The cache's per-set LRU must match a straightforward OrderedDict
    reference implementation."""
    config = CacheConfig(512, 2, 64, 1)  # 4 sets, 2 ways
    cache = Cache(config, "c")
    reference = [OrderedDict() for _ in range(config.num_sets)]
    for index in line_indices:
        addr = index * 64
        line = cache.line_addr(addr)
        ref_set = reference[cache.set_index(line)]
        expected_hit = line in ref_set
        assert cache.lookup(addr) == expected_hit
        if expected_hit:
            ref_set.move_to_end(line)
        else:
            cache.fill(addr)
            if len(ref_set) >= config.assoc:
                ref_set.popitem(last=False)
            ref_set[line] = None
    for set_index, ref_set in enumerate(reference):
        for line in ref_set:
            assert cache.probe(line * 64)


class TestHierarchy:
    def make(self):
        return MemoryHierarchy(MemoryConfig(), StatsCollector())

    def test_l1_hit_is_same_cycle(self):
        memory = self.make()
        memory.fetch_line(0x1000, now=10)       # cold miss, fills
        assert memory.fetch_line(0x1000, now=200) == 200

    def test_cold_miss_pays_l2_plus_memory(self):
        memory = self.make()
        ready = memory.fetch_line(0x1000, now=10)
        config = MemoryConfig()
        expected = 10 + (config.l1i.latency + config.l2.latency
                         + config.memory_latency) - 1
        assert ready == expected

    def test_l2_hit_after_l1_eviction_cheaper(self):
        memory = self.make()
        memory.data_access(0x0, now=0)
        # Evict line 0 from L1D (64KB 2-way -> fill both ways of set 0).
        sets = memory.l1d.config.num_sets
        memory.data_access(sets * 64, now=1000)
        memory.data_access(2 * sets * 64, now=2000)
        ready = memory.data_access(0x0, now=3000)
        config = MemoryConfig()
        # L2 block is 128B and was filled by the first access.
        assert ready == 3000 + config.l1d.latency + config.l2.latency - 1

    def test_mshr_merges_inflight_requests(self):
        memory = self.make()
        first = memory.fetch_line(0x2000, now=10)
        second = memory.fetch_line(0x2000, now=12)
        assert second == first
        assert memory.stats.get("imem.mshr_merges") == 1

    def test_separate_lines_do_not_merge(self):
        memory = self.make()
        a = memory.fetch_line(0x2000, now=10)
        b = memory.fetch_line(0x9000, now=10)
        assert memory.stats.get("imem.mshr_merges") == 0
        assert a == b  # same latency, different MSHRs

    def test_i_and_d_share_l2(self):
        memory = self.make()
        memory.fetch_line(0x4000, now=0)        # fills L2 via I-side
        ready = memory.data_access(0x4000, now=1000)
        config = MemoryConfig()
        assert ready == 1000 + config.l1d.latency + config.l2.latency - 1

    def test_ibank_count(self):
        memory = self.make()
        assert memory.num_ibanks == 16
        assert memory.ibank_of(0x1000) != memory.ibank_of(0x1040)
