"""Tests for fragment buffers, the trace cache, and front-end control."""

from repro.config import FragmentConfig, TraceCacheConfig, TracePredictorConfig
from repro.frontend.buffers import FragmentBufferArray, FragmentInFlight
from repro.frontend.control import FrontEndControl
from repro.frontend.fragments import walk_fragment
from repro.frontend.trace_cache import TraceCache
from repro.isa.assembler import assemble
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor
from repro.stats import StatsCollector

CONFIG = FragmentConfig()


def make_fragment(seq, program, start_pc, dirs=()):
    static = walk_fragment(program, start_pc, dirs, CONFIG)
    return FragmentInFlight(seq, static.key, static, (), ())


def straight_program(n=64):
    return assemble("\n".join(["add t0, t0, t1"] * n) + "\nhalt")


class TestFragmentBuffers:
    def test_allocate_until_full(self):
        program = straight_program()
        buffers = FragmentBufferArray(2, StatsCollector())
        a = make_fragment(0, program, program.text_base)
        b = make_fragment(1, program, program.text_base + 64)
        c = make_fragment(2, program, program.text_base + 128)
        assert buffers.allocate(a, now=1)
        assert buffers.allocate(b, now=1)
        assert not buffers.allocate(c, now=1)
        assert buffers.free_count() == 0

    def test_release_and_reuse(self):
        program = straight_program()
        buffers = FragmentBufferArray(2, StatsCollector())
        a = make_fragment(0, program, program.text_base)
        buffers.allocate(a, now=1)
        a.complete = True
        buffers.release(a, now=2, retain=True)
        # Same key again: contents reused, fragment complete instantly.
        again = make_fragment(1, program, program.text_base)
        assert buffers.allocate(again, now=3)
        assert again.reused and again.complete
        assert again.fetched_count == again.static_frag.length
        assert buffers.stats.get("fragbuf.reuses") == 1

    def test_incomplete_fragments_not_retained(self):
        program = straight_program()
        buffers = FragmentBufferArray(1, StatsCollector())
        a = make_fragment(0, program, program.text_base)
        buffers.allocate(a, now=1)
        buffers.release(a, now=2, retain=True)  # not complete -> dropped
        again = make_fragment(1, program, program.text_base)
        buffers.allocate(again, now=3)
        assert not again.reused

    def test_oldest_free_buffer_chosen(self):
        program = straight_program()
        buffers = FragmentBufferArray(2, StatsCollector())
        a = make_fragment(0, program, program.text_base)
        b = make_fragment(1, program, program.text_base + 64)
        buffers.allocate(a, now=1)
        buffers.allocate(b, now=1)
        a.complete = b.complete = True
        buffers.release(a, now=5, retain=True)
        buffers.release(b, now=9, retain=True)
        # New (different) fragment takes the slot freed earliest (a's),
        # preserving b's more recent contents for reuse.
        c = make_fragment(2, program, program.text_base + 128)
        buffers.allocate(c, now=10)
        again_b = make_fragment(3, program, program.text_base + 64)
        buffers.allocate(again_b, now=11)
        assert again_b.reused

    def test_occupants_sorted_by_age(self):
        program = straight_program()
        buffers = FragmentBufferArray(3, StatsCollector())
        frags = [make_fragment(i, program, program.text_base + 64 * i)
                 for i in (2, 0, 1)]
        for f in frags:
            buffers.allocate(f, now=1)
        assert [f.seq for f in buffers.occupants()] == [0, 1, 2]

    def test_reset_rename_clears_state(self):
        program = straight_program()
        fragment = make_fragment(0, program, program.text_base)
        fragment.read_count = 5
        fragment.phase1_done = True
        fragment.rename_done = True
        fragment.uops = [object()]
        fragment.reset_rename()
        assert fragment.read_count == 0
        assert not fragment.phase1_done and not fragment.rename_done
        assert fragment.uops == []


class TestTraceCache:
    def test_miss_then_hit_after_insert(self):
        program = straight_program()
        tc = TraceCache(TraceCacheConfig(size_bytes=4096))
        key = walk_fragment(program, program.text_base, (), CONFIG).key
        assert not tc.lookup(key)
        tc.insert(key)
        assert tc.lookup(key)
        assert tc.hit_rate == 0.5

    def test_different_directions_are_different_traces(self):
        program = assemble("""
        top:
            beq t0, t1, top
            halt
        """)
        tc = TraceCache(TraceCacheConfig(size_bytes=4096))
        taken = walk_fragment(program, program.text_base, (True,), CONFIG).key
        fall = walk_fragment(program, program.text_base, (False,), CONFIG).key
        tc.insert(taken)
        assert not tc.lookup(fall)

    def test_associativity_eviction(self):
        program = straight_program(256)
        config = TraceCacheConfig(size_bytes=128, assoc=2)  # 1 set
        tc = TraceCache(config)
        keys = [walk_fragment(program, program.text_base + 64 * i, (),
                              CONFIG).key for i in range(3)]
        for key in keys:
            tc.insert(key)
        assert not tc.lookup(keys[0])  # evicted by LRU
        assert tc.lookup(keys[2])


class TestFrontEndControl:
    def make_control(self, program, start):
        stats = StatsCollector()
        predictor = TracePredictor(TracePredictorConfig(), stats)
        ras = ReturnAddressStack()
        return FrontEndControl(program, CONFIG, predictor, ras, stats,
                               start), predictor, ras

    def test_follows_fall_through_chain_cold(self):
        program = straight_program(64)
        control, _, _ = self.make_control(program, program.text_base)
        first = control.try_next_fragment()
        second = control.try_next_fragment()
        assert first.seq == 0 and second.seq == 1
        assert second.key.start_pc == first.static_frag.next_pc

    def test_stalls_on_unpredicted_indirect(self):
        program = assemble("jr t0\nhalt")
        control, _, _ = self.make_control(program, program.text_base)
        first = control.try_next_fragment()
        assert first is not None
        assert control.try_next_fragment() is None
        assert control.stalled_on_indirect

    def test_ras_supplies_return_target(self):
        program = assemble("""
        main:
            call f
            halt
        f:
            ret
        """)
        control, _, _ = self.make_control(program, program.symbols["main"])
        first = control.try_next_fragment()     # call...ret (one fragment)
        assert first.static_frag.instructions[-1].is_return
        after = control.try_next_fragment()
        assert after is not None
        assert after.key.start_pc == program.symbols["main"] + 4

    def test_redirect_restores_checkpoints(self):
        program = straight_program(64)
        control, predictor, ras = self.make_control(program,
                                                    program.text_base)
        fragment = control.try_next_fragment()
        control.try_next_fragment()
        control.redirect(program.text_base + 8, fragment=fragment,
                         valid_prefix=1)
        assert predictor.snapshot_history() == fragment.history_snapshot
        nxt = control.try_next_fragment()
        assert nxt.key.start_pc == program.text_base + 8

    def test_prediction_drives_next_start_after_training(self):
        program = assemble("""
        a:  jr t0
        b:  halt
        """)
        control, predictor, _ = self.make_control(program,
                                                  program.symbols["a"])
        first = control.try_next_fragment()
        # Teach the predictor that `b` follows `a`.
        for _ in range(4):
            predictor.train(first.key)
            predictor.train(
                walk_fragment(program, program.symbols["b"], (),
                              CONFIG).key)
        nxt = control.try_next_fragment()
        assert nxt is not None
        assert nxt.key.start_pc == program.symbols["b"]
