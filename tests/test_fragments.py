"""Tests for fragment selection: the static walk, the dynamic carve, and
their equivalence — the core invariant the front-end relies on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FragmentConfig
from repro.emulator.machine import execute
from repro.frontend.fragments import (
    FragmentKey,
    TerminationReason,
    average_fragment_length,
    carve_stream,
    should_terminate,
    walk_fragment,
)
from repro.isa.assembler import assemble
from repro.workloads.kernels import state_machine, vector_sum
from repro.workloads.suite import get_benchmark, oracle_stream

CONFIG = FragmentConfig()


class TestShouldTerminate:
    def test_sixteenth_instruction(self):
        program = assemble("\n".join(["add t0, t0, t1"] * 20) + "\nhalt")
        inst = program.instructions[0]
        assert should_terminate(inst, 15, CONFIG) is None
        assert should_terminate(inst, 16, CONFIG) is \
            TerminationReason.MAX_LENGTH

    def test_conditional_branch_after_eighth(self):
        program = assemble("x: beq t0, t1, x")
        branch = program.instructions[0]
        assert should_terminate(branch, 8, CONFIG) is None
        assert should_terminate(branch, 9, CONFIG) is \
            TerminationReason.COND_LIMIT

    def test_indirect_always_terminates(self):
        program = assemble("jr t0")
        assert should_terminate(program.instructions[0], 1, CONFIG) is \
            TerminationReason.INDIRECT

    def test_halt_terminates(self):
        program = assemble("halt")
        assert should_terminate(program.instructions[0], 1, CONFIG) is \
            TerminationReason.HALT


class TestWalkFragment:
    def test_straight_line_caps_at_sixteen(self):
        program = assemble("\n".join(["add t0, t0, t1"] * 32) + "\nhalt")
        frag = walk_fragment(program, program.text_base, (), CONFIG)
        assert frag.length == 16
        assert frag.reason is TerminationReason.MAX_LENGTH
        assert frag.next_pc == program.text_base + 16 * 4

    def test_follows_direct_jumps(self):
        program = assemble("""
            j far
            nop
        far:
            add t0, t0, t1
            halt
        """)
        frag = walk_fragment(program, program.text_base, (), CONFIG)
        mnems = [i.opcode.mnemonic for i in frag.instructions]
        assert mnems == ["j", "add", "halt"]

    def test_direction_bits_steer_branches(self):
        program = assemble("""
            beq t0, t1, taken
            add t0, t0, t1
            halt
        taken:
            sub t0, t0, t1
            halt
        """)
        taken = walk_fragment(program, program.text_base, (True,), CONFIG)
        not_taken = walk_fragment(program, program.text_base, (False,),
                                  CONFIG)
        assert taken.instructions[1].opcode.mnemonic == "sub"
        assert not_taken.instructions[1].opcode.mnemonic == "add"
        assert taken.key.directions == (True,)
        assert not_taken.key.directions == (False,)

    def test_fallback_supplies_missing_directions(self):
        program = assemble("""
            beq t0, t1, taken
            halt
        taken:
            halt
        """)
        frag = walk_fragment(program, program.text_base, (), CONFIG,
                             fallback=lambda pc: True)
        assert frag.key.directions == (True,)

    def test_nops_are_traversed_but_not_counted(self):
        program = assemble("add t0, t0, t1\nnop\nnop\nsub t0, t0, t1\nhalt")
        frag = walk_fragment(program, program.text_base, (), CONFIG)
        assert frag.length == 3
        assert len(frag.traversed_pcs) == 5

    def test_walk_off_text_segment_stops(self):
        program = assemble("add t0, t0, t1")  # no halt: falls off the end
        frag = walk_fragment(program, program.text_base, (), CONFIG)
        assert frag.length == 1
        assert frag.reason is TerminationReason.HALT

    def test_indirect_has_no_next_pc(self):
        program = assemble("jr t0")
        frag = walk_fragment(program, program.text_base, (), CONFIG)
        assert frag.next_pc is None

    def test_key_hash_is_stable_and_distinguishes(self):
        a = FragmentKey(0x1000, (True, False))
        b = FragmentKey(0x1000, (True,))
        c = FragmentKey(0x1004, (True, False))
        assert a.hash_id() == FragmentKey(0x1000, (True, False)).hash_id()
        assert len({a.hash_id(), b.hash_id(), c.hash_id()}) == 3


class TestCarveStream:
    def test_concatenation_reconstructs_stream(self):
        stream = [r for r in execute(state_machine(64)).stream
                  if not r.inst.is_nop]
        fragments = list(carve_stream(stream, CONFIG))
        flattened = [r for f in fragments for r in f.records]
        assert flattened == stream

    def test_final_fragment_marks_stream_end(self):
        stream = [r for r in execute(vector_sum(8)).stream
                  if not r.inst.is_nop][:10]
        fragments = list(carve_stream(stream, CONFIG))
        assert fragments[-1].reason in (TerminationReason.STREAM_END,
                                        TerminationReason.MAX_LENGTH,
                                        TerminationReason.COND_LIMIT)

    def test_average_length_excludes_trailing_partial(self):
        program = assemble("\n".join(["add t0, t0, t1"] * 20))
        stream = execute(program, 18).stream
        # one complete 16-inst fragment + 2-inst partial
        assert average_fragment_length(stream, CONFIG) == 16.0

    def test_average_length_empty_stream(self):
        assert average_fragment_length([], CONFIG) == 0.0


@pytest.mark.parametrize("bench", ["gzip", "mcf", "eon"])
def test_walk_carve_equivalence_on_suite(bench):
    """For every dynamically-observed fragment, statically walking its key
    reproduces exactly the same instruction sequence."""
    program = get_benchmark(bench)
    stream = oracle_stream(bench, 5000).stream
    fragments = list(carve_stream(stream, CONFIG))
    for fragment in fragments[:-1]:  # last may be truncated
        static = walk_fragment(program, fragment.key.start_pc,
                               fragment.key.directions, CONFIG)
        assert static.key == fragment.key
        assert [i.addr for i in static.instructions] == \
            [r.pc for r in fragment.records]
        if fragment.next_pc is not None and static.next_pc is not None:
            assert static.next_pc == fragment.next_pc


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=25, deadline=None)
def test_fragment_length_never_exceeds_config(max_length, limit):
    if limit > max_length:
        limit = max_length
    config = FragmentConfig(max_length=max_length, cond_branch_limit=limit)
    stream = execute(state_machine(64)).stream
    for fragment in carve_stream(stream, config):
        assert fragment.length <= max_length
