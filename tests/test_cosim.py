"""The co-simulation engine's bit-identity and isolation contracts.

``repro.perf.cosim`` advances N timing configs over one shared prepared
stream, sharing only state that is a pure function of the stream (decode
cache, SoA tables, warm-snapshot training, gap touch lists).  The
license for all of that sharing is bit identity: every co-simulated
result — counters included — must equal the serial
``run_simulation(config, ...)`` result in full-detail, observability-on
and sampled modes, and damaging one sibling's private state must never
leak into another's result.  The sweep runner's integration (grouped
jobs become one co-sim batch) must likewise leave reports bit-identical
with or without grouping and co-simulation.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.errors import SimulationError
from repro.perf.cosim import run_cosim
from repro.sampling import SamplingConfig
from repro.sampling.prep import clear_prep_caches

LENGTH = 6000
SAMPLED_LENGTH = 24000
SAMPLING = SamplingConfig(period=4, unit=500, warmup=500)
CONFIGS = ("w16", "tc", "pf-2x8w", "pr-2x8w")


@pytest.fixture(autouse=True)
def fresh_prep_caches():
    """Each test starts cold so sharing happens inside the test."""
    clear_prep_caches()
    yield
    clear_prep_caches()


def result_tuple(result):
    return (result.config_name, result.cycles, result.committed,
            dict(result.counters))


def serial_reference(configs, benchmark, length, **kwargs):
    """Per-config serial runs, prep caches cleared between configs."""
    results = []
    for name in configs:
        clear_prep_caches()
        results.append(run_simulation(name, benchmark,
                                      max_instructions=length, **kwargs))
    clear_prep_caches()
    return results


class TestFullDetailParity:
    def test_bit_identical_to_serial(self):
        serial = serial_reference(CONFIGS, "gzip", LENGTH)
        results, savings = run_cosim([(name, None) for name in CONFIGS],
                                     "gzip", max_instructions=LENGTH)
        assert ([result_tuple(r) for r in results]
                == [result_tuple(r) for r in serial])
        assert savings["cosim.jobs"] == len(CONFIGS)

    def test_shared_decode_counted(self):
        _, savings = run_cosim([(name, None) for name in CONFIGS],
                               "gzip", max_instructions=LENGTH)
        # Tier >= 1 shares one decode cache: every miss-built entry is
        # served to the other n-1 siblings.
        assert savings.get("cosim.shared_decode", 0) > 0

    def test_duplicate_config_members_agree(self):
        results, _ = run_cosim([("w16", "a"), ("w16", "b")], "gzip",
                               max_instructions=LENGTH)
        assert results[0].cycles == results[1].cycles
        assert results[0].counters == results[1].counters

    def test_empty_specs(self):
        results, savings = run_cosim([], "gzip", max_instructions=LENGTH)
        assert results == [] and savings == {}


class TestSampledParity:
    @pytest.mark.parametrize("warm", (True, False))
    def test_bit_identical_to_serial(self, warm):
        serial = serial_reference(CONFIGS, "gzip", SAMPLED_LENGTH,
                                  warm=warm, sampling=SAMPLING)
        results, savings = run_cosim(
            [(name, None) for name in CONFIGS], "gzip",
            max_instructions=SAMPLED_LENGTH, warm=warm, sampling=SAMPLING)
        assert ([result_tuple(r) for r in results]
                == [result_tuple(r) for r in serial])
        if warm:
            # Warm gaps fast-forward once for the whole group.
            assert savings.get("cosim.gap_insts_shared", 0) > 0

    def test_state_damage_does_not_leak_across_siblings(self):
        """Trashing one sibling's private state mid-run leaves the
        others bit-identical to serial — the cross-config isolation
        contract that licenses running them over one stream."""
        serial = serial_reference(CONFIGS[1:], "gzip", SAMPLED_LENGTH,
                                  sampling=SAMPLING)

        def trash_first_sibling(ui, processors):
            victim = processors[0]
            for i in range(8):
                addr = 0xDEAD0000 + (ui * 8 + i) * 64
                victim.memory.l2.fill(addr)
                victim.memory.l1i.fill(addr)
                victim.memory.l1d.fill(addr)
                victim.bimodal.train(addr, bool(i & 1))

        clear_prep_caches()
        results, _ = run_cosim(
            [(name, None) for name in CONFIGS], "gzip",
            max_instructions=SAMPLED_LENGTH, sampling=SAMPLING,
            unit_hook=trash_first_sibling)
        assert ([result_tuple(r) for r in results[1:]]
                == [result_tuple(r) for r in serial])


class TestObservabilityParity:
    @staticmethod
    def stable(counters):
        # obs.profile.* second counters are wall clock, not simulation
        # state; everything else must match bit for bit.
        return {name: value for name, value in counters.items()
                if not (name.startswith("obs.profile.")
                        and name.endswith("seconds"))}

    @pytest.mark.parametrize("sampling", (False, SAMPLING),
                             ids=("full", "sampled"))
    def test_obs_counters_identical(self, monkeypatch, sampling):
        monkeypatch.setenv("REPRO_OBS_TRACE", "1")
        monkeypatch.setenv("REPRO_OBS_PROFILE", "1")
        length = SAMPLED_LENGTH if sampling else LENGTH
        serial = serial_reference(CONFIGS[:2], "gzip", length,
                                  sampling=sampling)
        results, _ = run_cosim([(name, None) for name in CONFIGS[:2]],
                               "gzip", max_instructions=length,
                               sampling=sampling)
        for expected, actual in zip(serial, results):
            assert expected.cycles == actual.cycles
            assert (self.stable(expected.counters)
                    == self.stable(actual.counters))


class TestSweepIntegration:
    """Grouping and co-simulation must be invisible in sweep reports."""

    JOBS_LENGTH = 2500

    @pytest.fixture(autouse=True)
    def hermetic_env(self, monkeypatch):
        from repro import faults
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        monkeypatch.delenv("REPRO_SWEEP_GROUP", raising=False)
        monkeypatch.delenv("REPRO_COSIM", raising=False)

    def make_jobs(self, sampling=None):
        from repro.experiments.runner import SweepJob
        return [SweepJob(config_name=name, benchmark=bench,
                         length=self.JOBS_LENGTH, sampling=sampling)
                for bench in ("gzip", "mcf") for name in CONFIGS]

    def run(self, jobs, **kwargs):
        from repro.experiments.runner import ResultCache, run_sweep
        clear_prep_caches()
        report = run_sweep(jobs, cache=ResultCache(enabled=False),
                           **kwargs)
        assert not report.failures, report.failures
        return report

    @pytest.mark.parametrize("sampling", (None, (4, 400, 400)),
                             ids=("full", "sampled"))
    def test_three_way_report_identity(self, sampling):
        jobs = self.make_jobs(sampling)
        ungrouped = self.run(jobs, workers=1, group_streams=False)
        grouped = self.run(jobs, workers=1, group_streams=True,
                           cosim=False)
        cosim = self.run(jobs, workers=1, group_streams=True, cosim=True)
        for job in jobs:
            expected = result_tuple(ungrouped.results[job])
            assert result_tuple(grouped.results[job]) == expected
            assert result_tuple(cosim.results[job]) == expected
        assert cosim.stats.get("sweep.cosim_groups") == 2
        assert cosim.stats.get("sweep.cosim_jobs") == len(jobs)
        assert grouped.stats.get("sweep.cosim_groups") == 0

    def test_pool_path_identity_and_savings(self):
        jobs = self.make_jobs()
        serial = self.run(jobs, workers=1, group_streams=False)
        pooled = self.run(jobs, workers=2, group_streams=True, cosim=True)
        for job in jobs:
            assert (result_tuple(pooled.results[job])
                    == result_tuple(serial.results[job]))
        if not pooled.stats.get("sweep.degraded"):
            # Workers are separate processes: the savings counters must
            # travel back through the group task's return value.
            assert pooled.stats.get("sweep.cosim_groups") == 2
            assert pooled.stats.get("sweep.cosim_shared_decode") > 0

    def test_cosim_env_knob_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_COSIM", "0")
        jobs = self.make_jobs()[:4]
        report = self.run(jobs, workers=1, group_streams=True)
        assert report.stats.get("sweep.cosim_groups") == 0

    def test_checkpointed_jobs_not_cosimulated(self):
        from repro.experiments.runner import SweepJob
        jobs = [SweepJob(config_name=name, benchmark="gzip",
                         length=self.JOBS_LENGTH, checkpoint=1000)
                for name in CONFIGS[:2]]
        report = self.run(jobs, workers=1, group_streams=True, cosim=True)
        assert report.stats.get("sweep.cosim_groups") == 0
        assert len(report.results) == len(jobs)

    def test_summary_reports_cosim_lines(self):
        jobs = self.make_jobs()[:4]
        report = self.run(jobs, workers=1, group_streams=True, cosim=True)
        summary = report.summary()
        assert "cosim groups  1 (4 jobs)" in summary
        assert "cosim shared  decode=" in summary
        without = self.run(jobs, workers=1, group_streams=True,
                           cosim=False)
        assert "cosim" not in without.summary()


class TestCli:
    def test_sweep_accepts_no_cosim(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(["sweep", "--no-cosim"])
        assert args.no_cosim is True
        args = build_parser().parse_args(["sweep"])
        assert args.no_cosim is False


class TestSharedStreamGuard:
    def test_oracle_mismatch_raises(self):
        from repro.config import frontend_config
        from repro.core.processor import Processor
        from repro.perf.soa import SharedStream
        from repro.sampling import prep

        program, execution, _ = prep.get_oracle("gzip", LENGTH)
        shared = SharedStream(execution.stream)
        short = execution.stream[:LENGTH // 2]
        with pytest.raises(SimulationError):
            Processor(frontend_config("w16"), program, short,
                      shared=shared)
