"""Tests for the pipeline tracer."""

from repro.core.trace import (
    format_pipeview,
    pipeline_summary,
    trace_simulation,
)
from repro.workloads.kernels import fibonacci


class TestTraceSimulation:
    def test_collects_every_committed_uop(self):
        traces = trace_simulation("w16", fibonacci(50),
                                  max_instructions=500)
        assert traces
        # Timestamps are monotone within each instruction's lifecycle.
        for t in traces:
            assert t.renamed <= t.dispatched <= t.issued
            assert t.issued < t.completed <= t.committed

    def test_commit_order_is_program_order(self):
        traces = trace_simulation("pr-2x8w", fibonacci(50),
                                  max_instructions=500)
        commits = [t.committed for t in traces]
        assert commits == sorted(commits)

    def test_pipeview_renders(self):
        traces = trace_simulation("w16", fibonacci(30),
                                  max_instructions=200)
        text = format_pipeview(traces, start=0, count=8)
        assert "R" in text and "C" in text and "|" in text
        assert "cycles" in text.splitlines()[0]

    def test_pipeview_empty_window(self):
        assert "empty" in format_pipeview([], 0, 8)

    def test_summary(self):
        traces = trace_simulation("w16", fibonacci(30),
                                  max_instructions=200)
        summary = pipeline_summary(traces)
        assert summary["instructions"] == len(traces)
        assert summary["avg_lifetime_cycles"] > 0
        assert pipeline_summary([]) == {}
