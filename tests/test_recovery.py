"""Tests for control-misprediction recovery and speculation bookkeeping.

These drive the full processor on hand-built programs whose control flow
forces specific recovery scenarios, then check architectural invariants.
"""

from repro import frontend_config
from repro.core.processor import Processor
from repro.core.uop import UopState
from repro.emulator.machine import execute
from repro.isa.assembler import assemble


def run_program(source, config_name="pf-2x8w", n=3000):
    program = assemble(source)
    oracle = execute(program, n).stream
    processor = Processor(frontend_config(config_name), program, oracle)
    processor.run()
    return processor, oracle


# A loop whose exit is systematically mispredicted at first (cold), and a
# data-dependent branch pattern inside.
ALTERNATING = """
main:
    li   s0, 200
loop:
    andi t0, s0, 1
    beq  t0, zero, even
    addi t1, t1, 1
    j    join
even:
    addi t2, t2, 1
join:
    addi s0, s0, -1
    bne  s0, zero, loop
    halt
"""


class TestRecovery:
    def test_alternating_branches_commit_exactly(self):
        processor, oracle = run_program(ALTERNATING)
        assert processor.finished
        non_nop = sum(1 for r in oracle if not r.inst.is_nop)
        assert processor.committed == non_nop

    def test_recoveries_occur_and_resolve(self):
        processor, _ = run_program(ALTERNATING)
        assert processor.stats.get("frontend.recoveries") > 0
        # The run completed; anything left in flight is harmless
        # speculation past the stream end (e.g. past the final halt).
        assert processor.finished

    def test_no_wrong_path_uop_survives(self):
        processor, _ = run_program(ALTERNATING, config_name="pr-2x8w")
        assert processor.finished
        # All squashed uops stay squashed; committed count matches stats.
        assert processor.stats.get("commit.insts") == processor.committed

    def test_indirect_stall_resolution(self):
        """A never-before-seen indirect target must resolve via the
        execute-time redirect path, not hang fetch."""
        source = """
        main:
            la   t0, target
            jr   t0
            nop
        target:
            li   t1, 5
            out  t1
            halt
        """
        processor, oracle = run_program(source, n=100)
        assert processor.finished
        non_nop = sum(1 for r in oracle if not r.inst.is_nop)
        assert processor.committed == non_nop

    def test_deep_call_chain(self):
        """Nested calls/returns exercise RAS checkpointing under
        speculation."""
        source = """
        main:
            li   s1, 40
        again:
            call a
            addi s1, s1, -1
            bne  s1, zero, again
            halt
        a:
            addi sp, sp, -8
            st   ra, 0(sp)
            call b
            ld   ra, 0(sp)
            addi sp, sp, 8
            ret
        b:
            addi sp, sp, -8
            st   ra, 0(sp)
            call c
            ld   ra, 0(sp)
            addi sp, sp, 8
            ret
        c:
            add  t0, t0, t1
            ret
        """
        processor, oracle = run_program(source, n=2000)
        assert processor.finished
        # Returns should be nearly perfectly predicted via the RAS.
        recoveries = processor.stats.get("frontend.mispredict_return")
        assert recoveries <= 2

    def test_fragment_truncation_state(self):
        """After recovery, the truncated source fragment must look
        architecturally consistent."""
        processor, _ = run_program(ALTERNATING)
        # Every detected misprediction either recovered or was superseded
        # by an older recovery; recoveries can never exceed detections.
        assert 0 < processor.stats.get("frontend.recoveries") <= \
            processor.stats.get("frontend.control_mispredicts")

    def test_squashed_uops_marked(self):
        program = assemble(ALTERNATING)
        oracle = execute(program, 1500).stream
        processor = Processor(frontend_config("pf-4x4w"), program, oracle)
        squashed_seen = []
        for _ in range(400):
            if processor.finished:
                break
            processor.step()
            for fragment in processor.fragments:
                squashed_seen.extend(
                    u for u in fragment.uops
                    if u.state is UopState.SQUASHED)
        # Squashed uops may transiently appear in truncated fragments'
        # lists only before pruning; fragments in the live list must not
        # expose squashed uops.
        assert not squashed_seen
