"""Tests for the experiment harnesses (tiny scale)."""

import pytest

from repro.experiments import (
    clear_cache,
    experiment_benchmarks,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_table2,
    run_cached,
    table1,
    table2,
    text_statistics,
    format_text_statistics,
)

BENCHES = ["gzip", "mcf"]
LENGTH = 2000


@pytest.fixture(autouse=True, scope="module")
def _clean_cache():
    clear_cache()
    yield
    clear_cache()


class TestCommon:
    def test_run_cached_memoizes(self):
        first = run_cached("w16", "gzip", LENGTH)
        second = run_cached("w16", "gzip", LENGTH)
        assert first is second

    def test_run_cached_distinguishes_storage(self):
        default = run_cached("w16", "gzip", LENGTH)
        small = run_cached("w16", "gzip", LENGTH, total_l1_storage=8192)
        assert default is not small

    def test_run_cached_distinguishes_predictor_entries(self):
        default = run_cached("w16", "gzip", LENGTH)
        scaled = run_cached("w16", "gzip", LENGTH, predictor_entries=1024)
        assert default is not scaled
        assert scaled is run_cached("w16", "gzip", LENGTH,
                                    predictor_entries=1024)

    def test_run_cached_distinguishes_overrides(self):
        default = run_cached("pf-2x8w", "gzip", LENGTH)
        overridden = run_cached(
            "pf-2x8w", "gzip", LENGTH,
            overrides=(("frontend.num_fragment_buffers", 4),))
        assert default is not overridden
        assert overridden is run_cached(
            "pf-2x8w", "gzip", LENGTH,
            overrides=(("frontend.num_fragment_buffers", 4),))

    def test_run_cached_distinguishes_warm(self):
        warm = run_cached("w16", "gzip", LENGTH)
        cold = run_cached("w16", "gzip", LENGTH, warm=False)
        assert warm is not cold

    def test_experiment_benchmarks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_BENCHMARKS", "gzip, mcf")
        assert experiment_benchmarks() == ["gzip", "mcf"]
        monkeypatch.setenv("REPRO_EXPERIMENT_BENCHMARKS", "bogus")
        with pytest.raises(ValueError):
            experiment_benchmarks()


class TestTables:
    def test_table1_mentions_parameters(self):
        text = table1()
        assert "256-entry" in text
        assert "100-cycle" in text

    def test_table2_rows(self):
        rows = table2(length=LENGTH, benchmarks=BENCHES)
        assert set(rows) == set(BENCHES)
        text = format_table2(rows)
        assert "mcf" in text and "Avg frag size" in text


class TestFigures:
    def test_figure4(self):
        data = figure4(length=LENGTH, benchmarks=BENCHES)
        assert set(data["hmean"]) == {"w16", "tc", "tc2x", "pf-2x8w",
                                      "pf-4x4w"}
        assert all(0 < v <= 1 for v in data["hmean"].values())
        assert "Figure 4" in format_figure4(data)

    def test_figure5(self):
        data = figure5(length=LENGTH, benchmarks=BENCHES)
        for config, fetch in data["fetch_rate"].items():
            assert fetch >= data["rename_rate"][config] - 1e-9
        assert "Figure 5" in format_figure5(data)

    def test_figure6(self):
        data = figure6(length=LENGTH, benchmarks=BENCHES)
        assert set(data["penalty_percent"]) == {"tc+pr-2x8w", "tc+pr-4x4w"}
        assert "Figure 6" in format_figure6(data)

    def test_figure7_accuracy_monotone_in_entries(self):
        data = figure7(length=LENGTH, benchmarks=BENCHES,
                       entries_grid=(64, 4096), assoc_grid=(2,))
        small, large = (data["accuracy"][2][64],
                        data["accuracy"][2][4096])
        assert large >= small
        assert "Figure 7" in format_figure7(data)

    def test_figure8(self):
        data = figure8(length=LENGTH, benchmarks=BENCHES)
        assert set(data["mean"]) == {"tc", "tc2x", "pf-2x8w", "pf-4x4w",
                                     "pr-2x8w", "pr-4x4w"}
        assert "Figure 8" in format_figure8(data)

    def test_figure9_structure(self):
        data = figure9(length=LENGTH, benchmarks=BENCHES,
                       storages=(8192, 65536), configs=("w16", "pr-2x8w"))
        assert len(data["speedup"]["pr-2x8w"]) == 2
        assert "Figure 9" in format_figure9(data)

    def test_figure10_structure(self):
        data = figure10(length=LENGTH, benchmarks=BENCHES,
                        entries_grid=(1024, 65536), configs=("w16",))
        assert len(data["speedup"]["w16"]) == 2
        assert "Figure 10" in format_figure10(data)

    def test_text_statistics(self):
        data = text_statistics(length=LENGTH, benchmarks=BENCHES)
        assert set(data["fragment_reuse"]) == set(BENCHES)
        assert 0 <= data["mean_tc_hit_rate"] <= 1
        assert "In-text statistics" in format_text_statistics(data)


class TestFigure8MatrixDeterminism:
    """The PR's acceptance criterion: a 4-worker parallel sweep of the
    Figure 8 matrix is counter-for-counter identical to the serial path,
    and a warm disk cache re-sweeps with zero simulations executed."""

    def test_parallel_equals_serial_and_warm_cache(self, tmp_path):
        from repro.experiments.frontend_figs import FIG8_CONFIGS
        from repro.experiments.runner import ResultCache, SweepJob, run_sweep

        jobs = [SweepJob(config, bench, LENGTH)
                for config in ["w16"] + list(FIG8_CONFIGS)
                for bench in BENCHES]
        cache = ResultCache(tmp_path, enabled=True)
        parallel = run_sweep(jobs, workers=4, cache=cache)
        serial = run_sweep(jobs, workers=1,
                           cache=ResultCache(tmp_path / "none",
                                             enabled=False))
        for job in jobs:
            left, right = parallel.results[job], serial.results[job]
            assert left.cycles == right.cycles
            assert left.committed == right.committed
            assert left.counters == right.counters
        warm = run_sweep(jobs, workers=4, cache=cache)
        assert warm.executed == 0
        assert int(warm.stats.get("sweep.disk_hits")) == len(jobs)


class TestMaxInstructionsEdge:
    def test_zero_is_not_replaced_by_suite_default(self):
        """max_instructions=0 must not silently become the 30k default;
        an empty stream is an explicit error."""
        from repro.core.simulation import run_simulation
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_simulation("w16", "gzip", max_instructions=0)

    def test_small_explicit_length_respected(self):
        from repro.core.simulation import run_simulation

        result = run_simulation("w16", "gzip", max_instructions=50)
        assert result.committed == 50
