"""Tests for the observability layer (:mod:`repro.obs`).

Covers the three pillars — cycle-sampled metrics, Chrome trace-event
export, phase self-profiling — plus the guarantees the layer makes:
sampling cadence, ring truncation with exact summaries, trace schema
validity, and result identity with observability on or off.
"""

import json
import types

import pytest

from repro.config import ObservabilityConfig
from repro.core.simulation import run_simulation
from repro.errors import ConfigError
from repro.obs import (
    EventTracer,
    MetricsRecorder,
    Observability,
    PhaseProfiler,
    TimeSeries,
    validate_chrome_trace,
)


def _stub_processor(now: int):
    """Just enough processor surface for MetricsRecorder.sample()."""
    fragment = types.SimpleNamespace(renameable_count=lambda: 2)
    return types.SimpleNamespace(
        now=now,
        fragments=[fragment, fragment],
        buffers=types.SimpleNamespace(occupied_count=lambda: 3),
        core=types.SimpleNamespace(window_used=7,
                                   in_flight_dispatch=lambda: 1),
        engine=types.SimpleNamespace(busy_sequencers=lambda now: 2),
    )


class TestObservabilityConfig:
    def test_disabled_by_default(self):
        config = ObservabilityConfig()
        assert not config.enabled
        assert Observability(config).enabled is False

    def test_any_pillar_enables(self):
        assert ObservabilityConfig(sample_interval=10).enabled
        assert ObservabilityConfig(trace=True).enabled
        assert ObservabilityConfig(profile=True).enabled

    def test_trace_path_implies_trace(self):
        config = ObservabilityConfig(trace_path="t.json")
        assert config.trace

    def test_rejects_negative_interval(self):
        with pytest.raises(ConfigError):
            ObservabilityConfig(sample_interval=-1)

    def test_from_env_defaults_off(self, monkeypatch):
        for name in ("REPRO_OBS_SAMPLE", "REPRO_OBS_TRACE",
                     "REPRO_OBS_PROFILE"):
            monkeypatch.delenv(name, raising=False)
        assert not ObservabilityConfig.from_env().enabled
        assert Observability.from_env() is None

    def test_from_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "50")
        monkeypatch.setenv("REPRO_OBS_TRACE", "1")
        monkeypatch.setenv("REPRO_OBS_PROFILE", "1")
        config = ObservabilityConfig.from_env()
        assert config.sample_interval == 50
        assert config.trace and config.trace_path is None
        assert config.profile

    def test_from_env_trace_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_TRACE", "/tmp/out.json")
        config = ObservabilityConfig.from_env()
        assert config.trace and config.trace_path == "/tmp/out.json"


class TestTimeSeries:
    def test_ring_truncates_but_summaries_are_exact(self):
        series = TimeSeries("g", capacity=4)
        for cycle, value in enumerate(range(10)):
            series.append(cycle, value)
        # The ring holds only the newest 4 samples...
        assert series.samples() == [(6, 6), (7, 7), (8, 8), (9, 9)]
        # ...but the running summaries still cover all 10.
        assert series.count == 10
        assert series.vmin == 0 and series.vmax == 9
        assert series.mean == pytest.approx(4.5)
        assert series.last == 9

    def test_histogram_power_of_two_buckets(self):
        series = TimeSeries("g", capacity=16)
        for value in (0, 1, 2, 3, 4, 7, 8):
            series.append(0, value)
        assert series.histogram() == {"0": 1, "1": 1, "2-3": 2,
                                      "4-7": 2, "8-15": 1}

    def test_empty_series(self):
        series = TimeSeries("g", capacity=4)
        assert series.mean == 0.0 and series.last == 0.0
        assert series.as_dict()["min"] == 0.0


class TestMetricsRecorder:
    def test_sampling_cadence(self):
        recorder = MetricsRecorder(interval=10, capacity=64)
        for now in range(1, 101):
            recorder.maybe_sample(_stub_processor(now))
        series = recorder.series["window.used"]
        assert series.count == 10
        assert [cycle for cycle, _ in series.samples()] == \
            [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_gauge_values_read_off_processor(self):
        recorder = MetricsRecorder(interval=1, capacity=8)
        recorder.sample(_stub_processor(5))
        assert recorder.series["fragbuf.occupancy"].last == 3
        assert recorder.series["window.used"].last == 7
        assert recorder.series["sequencers.busy"].last == 2
        assert recorder.series["rename.queue"].last == 4
        assert recorder.series["dispatch.queue"].last == 1
        assert recorder.series["fragments.in_flight"].last == 2

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            MetricsRecorder(interval=0)

    def test_to_counters_and_summary(self):
        recorder = MetricsRecorder(interval=1, capacity=8)
        recorder.sample(_stub_processor(1))
        from repro.stats import StatsCollector
        stats = StatsCollector()
        recorder.to_counters(stats)
        assert stats["obs.window.used.samples"] == 1
        assert stats["obs.window.used.max"] == 7
        text = recorder.summary_text()
        assert "window.used" in text and "mean" in text

    def test_samples_mirrored_to_tracer_as_counters(self):
        tracer = EventTracer(limit=100)
        recorder = MetricsRecorder(interval=1, capacity=8, tracer=tracer)
        recorder.sample(_stub_processor(1))
        counter_events = [e for e in tracer.events if e["ph"] == "C"]
        assert len(counter_events) == len(MetricsRecorder.GAUGES)


class TestEventTracer:
    def test_limit_counts_dropped_events(self):
        tracer = EventTracer(limit=2)
        for i in range(5):
            tracer.instant("e", ts=i)
        assert len(tracer.events) == 2 and tracer.dropped == 3

    def test_export_is_schema_valid(self):
        tracer = EventTracer(limit=100)
        tracer.instant("squash", ts=4, args={"seq": 1})
        tracer.counter("window.used", ts=5, value=12)
        payload = tracer.export(process_name="test", sequencers=2)
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["name"] == "thread_name"}
        assert {"sequencer 0", "sequencer 1", "pipeline events",
                "rename", "gauges"} <= names

    def test_validator_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "Z", "pid": 1, "tid": 0, "ts": 0}]})

    def test_validator_rejects_end_before_begin(self):
        with pytest.raises(ValueError, match="end before begin"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "e", "cat": "fragment", "id": 7,
                 "pid": 1, "tid": 0, "ts": 0}]})

    def test_validator_rejects_complete_without_dur(self):
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}]})

    def test_validator_rejects_missing_ts(self):
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "i", "pid": 1, "tid": 0}]})


class TestPhaseProfiler:
    def test_accumulates_per_phase(self):
        profiler = PhaseProfiler()
        t0 = profiler.start()
        profiler.stop("fetch", t0)
        profiler.stop("fetch", profiler.start())
        profiler.stop("rename", profiler.start())
        assert profiler.calls["fetch"] == 2
        assert profiler.calls["rename"] == 1
        assert profiler.seconds["fetch"] >= 0.0
        assert profiler.total_seconds == pytest.approx(
            sum(profiler.seconds.values()))

    def test_report_lists_phases(self):
        profiler = PhaseProfiler()
        profiler.stop("fetch", profiler.start())
        report = profiler.report()
        assert "fetch" in report and "us/call" in report
        assert "total" in report


class TestSimulationIntegration:
    CONFIG = "pr-2x8w"
    BENCH = "gzip"
    N = 1500

    def _run(self, obs=None):
        return run_simulation(self.CONFIG, self.BENCH,
                              max_instructions=self.N,
                              observability=obs)

    def test_full_stack_folds_counters(self, tmp_path):
        path = tmp_path / "trace.json"
        obs = Observability(ObservabilityConfig(
            sample_interval=50, trace=True, profile=True,
            trace_path=str(path)))
        result = self._run(obs)
        assert result.counter("obs.window.used.samples") > 0
        assert result.counter("obs.trace.events") > 0
        assert result.counter("obs.profile.total_seconds") > 0
        for phase in ("execute", "commit", "rename", "fetch"):
            assert result.counter(f"obs.profile.{phase}.calls") == \
                result.cycles
        # trace_path auto-exported a schema-valid trace on finalize.
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_observability_does_not_perturb_results(self):
        """The acceptance criterion: enabling every pillar leaves the
        simulated outcome bit-identical (profiled step() is a verbatim
        copy; metrics/tracing only read state)."""
        baseline = self._run()
        obs = Observability(ObservabilityConfig(
            sample_interval=20, trace=True, profile=True))
        observed = self._run(obs)
        assert observed.cycles == baseline.cycles
        assert observed.committed == baseline.committed
        stripped = {name: value
                    for name, value in observed.counters.items()
                    if not name.startswith("obs.")}
        assert stripped == baseline.counters

    def test_trace_spans_per_sequencer(self):
        obs = Observability(ObservabilityConfig(trace=True))
        self._run(obs)
        payload = obs.tracer.export(process_name="t", sequencers=2)
        validate_chrome_trace(payload)
        fetch_tids = {e["tid"] for e in payload["traceEvents"]
                      if e.get("cat") == "fetch"}
        # pr-2x8w has two sequencers; both must have fetched something.
        assert fetch_tids == {0, 1}
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"b", "e", "X", "i", "M"} <= phases

    def test_env_knobs_reach_default_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "100")
        result = self._run()
        assert result.counter("obs.window.used.samples") > 0
