"""Tests for binary instruction encoding/decoding and the disassembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator.machine import Machine, execute
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program, format_instruction
from repro.isa.encoding import (
    EncodingError,
    decode,
    encode,
    load_image,
    program_image,
)
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.program import Program
from repro.workloads.characteristics import WorkloadSpec
from repro.workloads.generator import generate_program
from repro.workloads.kernels import ALL_KERNELS

EXAMPLE = """
    main:
        li   t0, -300
        lui  t1, 0xFFFF
        ori  t1, t1, 0xFFFF
        andi t2, t1, 0x8000
        ld   t3, 8(gp)
        st   t3, 16(gp)
        fld  f2, 24(gp)
        fst  f2, 32(gp)
        fcvt f1, t0
        fadd f3, f1, f2
        fmul f4, f3, f3
        beq  t0, t1, main
        blt  t1, t0, fwd
        j    fwd
    fwd:
        jal  helper
        jal  t4, helper
        jalr t5
        mul  t6, t0, t1
        div  t7, t0, t1
        sra  s0, t0, t1
        sltu s1, t0, t1
        nop
        out  s0
        halt
    helper:
        jr   t5
        ret
"""


class TestRoundTrip:
    def test_example_program_roundtrips(self):
        program = assemble(EXAMPLE)
        for inst in program.instructions:
            decoded = decode(encode(inst), inst.addr)
            assert decoded == inst, f"{inst} != {decoded}"

    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_kernels_roundtrip(self, kernel):
        program = ALL_KERNELS[kernel]()
        for inst in program.instructions:
            assert decode(encode(inst), inst.addr) == inst

    @given(seed=st.integers(min_value=1, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_generated_workloads_roundtrip(self, seed):
        spec = WorkloadSpec(name="enc", seed=seed, num_functions=6,
                            hot_functions=3, switch_prob=0.2,
                            call_prob=0.15, mem_prob=0.15)
        program = generate_program(spec)
        for inst in program.instructions:
            assert decode(encode(inst), inst.addr) == inst

    def test_image_roundtrip_preserves_semantics(self):
        program = assemble(EXAMPLE)
        image = program_image(program)
        assert len(image) == len(program) * INSTRUCTION_BYTES
        reloaded = load_image(image, program.text_base)
        assert reloaded == program.instructions


class TestEncodeErrors:
    def test_rejects_wide_jump_target(self):
        inst = Instruction(Opcode.J, target=1 << 24, addr=0x1000)
        with pytest.raises(EncodingError, match="text region"):
            encode(inst)

    def test_rejects_unplaced_branch(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0x1000)
        with pytest.raises(EncodingError, match="unplaced"):
            encode(inst)

    def test_rejects_wide_immediate(self):
        inst = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=1 << 20,
                           addr=0x1000)
        with pytest.raises(EncodingError, match="immediate"):
            encode(inst)

    def test_decode_rejects_illegal_opcode(self):
        with pytest.raises(EncodingError, match="illegal opcode"):
            decode(0x3F << 26, 0x1000)

    def test_decode_rejects_wide_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32, 0x1000)

    def test_load_image_rejects_ragged(self):
        with pytest.raises(EncodingError):
            load_image(b"\x00\x01\x02", 0x1000)


class TestDisassembler:
    def test_reassembles_to_identical_instructions(self):
        program = assemble(EXAMPLE)
        source = disassemble_program(program)
        again = assemble(source)
        assert again.instructions == program.instructions

    def test_reassembled_program_behaves_identically(self):
        original = ALL_KERNELS["bubble_sort"]()
        again = assemble(disassemble_program(original))
        assert execute(again).outputs == execute(original).outputs

    def test_generated_workload_reassembles_and_runs(self):
        spec = WorkloadSpec(name="dis", seed=3, num_functions=6,
                            hot_functions=3, switch_prob=0.2)
        original = generate_program(spec)
        again = assemble(disassemble_program(original))
        assert again.instructions == original.instructions
        a = Machine(original).run(2000).stream
        b = Machine(again).run(2000).stream
        assert [(r.pc, r.taken) for r in a] == [(r.pc, r.taken) for r in b]

    def test_format_single_instruction(self):
        program = assemble("st t0, 8(sp)")
        assert format_instruction(program.instructions[0]) == \
            "st   r8, 8(r2)"
