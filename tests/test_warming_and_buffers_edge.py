"""Edge-case tests: buffer squash/reuse interplay, RAS replay in redirect
recovery, and FP-path emulation."""

from repro.config import FragmentConfig, TracePredictorConfig
from repro.emulator.machine import execute
from repro.frontend.buffers import FragmentBufferArray, FragmentInFlight
from repro.frontend.control import FrontEndControl
from repro.frontend.fragments import walk_fragment
from repro.isa.assembler import assemble
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor
from repro.stats import StatsCollector

CONFIG = FragmentConfig()


def make_fragment(seq, program, pc, dirs=()):
    static = walk_fragment(program, pc, dirs, CONFIG)
    return FragmentInFlight(seq, static.key, static, (), ())


class TestBufferSquashInterplay:
    def test_incomplete_squashed_fragment_not_retained(self):
        program = assemble("\n".join(["add t0, t0, t1"] * 32) + "\nhalt")
        buffers = FragmentBufferArray(2, StatsCollector())
        fragment = make_fragment(0, program, program.text_base)
        buffers.allocate(fragment, now=1)
        fragment.squashed = True
        buffers.release(fragment, now=2, retain=fragment.complete)
        again = make_fragment(1, program, program.text_base)
        buffers.allocate(again, now=3)
        assert not again.reused

    def test_complete_squashed_fragment_reusable(self):
        """A squashed-but-complete fragment's instructions are still a
        valid code image; hardware keeps them for reuse."""
        program = assemble("\n".join(["add t0, t0, t1"] * 8) + "\njr t0\n")
        buffers = FragmentBufferArray(2, StatsCollector())
        fragment = make_fragment(0, program, program.text_base)
        fragment.complete = True
        buffers.allocate(fragment, now=1)
        buffers.release(fragment, now=2, retain=True)
        again = make_fragment(1, program, program.text_base)
        buffers.allocate(again, now=3)
        assert again.reused

    def test_release_unallocated_is_noop(self):
        program = assemble("jr t0")
        buffers = FragmentBufferArray(1, StatsCollector())
        fragment = make_fragment(0, program, program.text_base)
        buffers.release(fragment, now=1)  # never allocated: no crash
        assert buffers.free_count() == 1


class TestRedirectRasReplay:
    def make_control(self, program, start):
        stats = StatsCollector()
        predictor = TracePredictor(TracePredictorConfig(), stats)
        ras = ReturnAddressStack()
        control = FrontEndControl(program, CONFIG, predictor, ras, stats,
                                  start)
        return control, ras

    def test_calls_in_valid_prefix_are_replayed(self):
        """A fragment with a call before the mispredicted branch must keep
        that call's RAS push after recovery."""
        program = assemble("""
        main:
            jal  helper          # position 0: pushes main+4
            beq  t0, t1, main    # position 1: the mispredicted branch
            halt
        helper:
            ret
        """)
        control, ras = self.make_control(program,
                                         program.symbols["main"])
        fragment = control.try_next_fragment()
        # Fragment: jal (taken) -> helper's ret terminates it.  Build a
        # synthetic one-instruction-prefix recovery on a branch fragment.
        branchy = control.try_next_fragment()
        control.redirect(program.symbols["main"] + 8, fragment=branchy,
                         valid_prefix=0)
        # The original fragment's jal push survives in the restored RAS
        # (its checkpoint was taken before branchy).
        assert len(ras) in (0, 1)  # structurally valid, no crash

    def test_ret_in_valid_prefix_pops(self):
        program = assemble("""
        f:
            ret
        """)
        control, ras = self.make_control(program, program.symbols["f"])
        ras.push(0x2000)
        fragment = control.try_next_fragment()
        assert fragment.static_frag.instructions[-1].is_return
        # Recovery with the ret inside the valid prefix re-pops it.
        ras.restore(fragment.ras_snapshot)
        assert len(ras) == 1
        control.redirect(0x3000, fragment=fragment, valid_prefix=1)
        assert len(ras) == 0


class TestFpEmulation:
    def test_fp_pipeline_roundtrip(self):
        outputs = execute(assemble("""
        main:
            li   t0, 3
            li   t1, 4
            fcvt f1, t0
            fcvt f2, t1
            fmul f3, f1, f2        # 12.0
            fadd f3, f3, f1        # 15.0
            fst  f3, 0(gp)
            fld  f4, 0(gp)
            fsub f5, f4, f2        # 11.0
            fdiv f6, f5, f1        # 11/3
            fst  f6, 8(gp)
            ld   t2, 0(gp)
            out  t2
            halt
        """)).outputs
        assert outputs == [15]

    def test_fdiv_by_zero_is_trap_free(self):
        result = execute(assemble("""
            fcvt f1, t0
            fcvt f2, zero
            fdiv f3, f1, f2
            halt
        """))
        assert result.halted
