"""Unit tests for micro-ops and placeholder producers."""

from repro.core.uop import MicroOp, PlaceholderProducer, UopState
from repro.isa.assembler import assemble


def make_uop(text="add t0, t1, t2", seq=1):
    inst = assemble(text).instructions[0]
    return MicroOp(seq, inst, inst.addr, fragment_seq=0, position=0,
                   record=None)


class TestMicroOp:
    def test_initial_state(self):
        uop = make_uop()
        assert uop.state is UopState.RENAMED
        assert not uop.on_correct_path
        assert uop.sources == []
        assert uop.redirect_target is None

    def test_sources_ready_no_sources(self):
        assert make_uop().sources_ready()

    def test_sources_ready_tracks_producer_state(self):
        producer = make_uop(seq=1)
        consumer = make_uop("add t3, t0, t0", seq=2)
        consumer.sources.append(producer)
        assert not consumer.sources_ready()
        producer.state = UopState.DONE
        assert consumer.sources_ready()
        producer.state = UopState.COMMITTED
        assert consumer.sources_ready()

    def test_actual_next_pc_wrong_path(self):
        assert make_uop().actual_next_pc() is None

    def test_control_classification(self):
        branch = make_uop("x: beq t0, t1, x")
        assert branch.is_control
        assert not make_uop().is_control


class TestPlaceholderProducer:
    def test_unbound_not_done(self):
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        assert not placeholder.done
        assert placeholder.producer is None

    def test_ready_flag(self):
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        placeholder.ready = True
        assert placeholder.done

    def test_bind_transfers_consumers(self):
        placeholder = PlaceholderProducer(8, fragment_seq=0)
        waiter = make_uop(seq=5)
        placeholder.consumers.append(waiter)
        producer = make_uop(seq=2)
        placeholder.bind(producer)
        assert placeholder.consumers == []
        assert waiter in producer.consumers
        assert not placeholder.done
        producer.state = UopState.DONE
        assert placeholder.done

    def test_chained_placeholders(self):
        inner = PlaceholderProducer(8, fragment_seq=0)
        outer = PlaceholderProducer(8, fragment_seq=1)
        outer.producer = inner
        assert not outer.done
        inner.ready = True
        assert outer.done

    def test_consumer_of_chain_via_sources_ready(self):
        inner = PlaceholderProducer(8, fragment_seq=0)
        outer = PlaceholderProducer(8, fragment_seq=1)
        outer.producer = inner
        consumer = make_uop("add t3, t0, t0")
        consumer.sources.append(outer)
        assert not consumer.sources_ready()
        producer = make_uop(seq=1)
        producer.state = UopState.DONE
        inner.producer = producer
        assert consumer.sources_ready()
