#!/usr/bin/env python
"""Docstring lint for the public API.

Walks ``src/repro`` with :mod:`ast` and requires a docstring on:

* every module;
* every public (non-underscore) class and top-level function;
* every public method of a public class (dunders other than
  ``__init__`` are exempt, as are trivial overrides consisting solely
  of ``pass``/``...``).

Run from the repo root (CI and ``tests/test_docs.py`` both do)::

    python tools/check_docstrings.py

Exits 1 listing each offender as ``path:line: kind name``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Decorators whose targets routinely restate an attribute one line up.
_EXEMPT_DECORATORS = {"overload"}


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _is_trivial(node: ast.AST) -> bool:
    """A body of only ``pass``/``...`` (protocol stubs, overrides)."""
    body = getattr(node, "body", [])
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


def _decorator_names(node) -> set:
    names = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _check_function(node, path, prefix, problems) -> None:
    if not _is_public(node.name) or node.name == "__init__":
        return
    if _is_trivial(node) or _decorator_names(node) & _EXEMPT_DECORATORS:
        return
    if ast.get_docstring(node) is None:
        problems.append(f"{path}:{node.lineno}: function {prefix}{node.name}")


def check_file(path: Path) -> list:
    problems: list = []
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: module")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(node, path, "", problems)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(f"{path}:{node.lineno}: class {node.name}")
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _check_function(child, path, f"{node.name}.", problems)
    return problems


def main() -> int:
    """Lint every module under ``src/repro``; 0 = clean."""
    problems: list = []
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} public definitions lack docstrings:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("docstring lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
